package experiments_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"thermaldc/internal/experiments"
	"thermaldc/internal/persist"
	"thermaldc/internal/solvererr"
)

// persistSweepConfig is a small sweep with enough epochs per closed run
// to make mid-run kill points meaningful.
func persistSweepConfig() experiments.DegradedConfig {
	cfg := experiments.DefaultDegradedConfig(7)
	cfg.NNodes = 10
	cfg.Trials = 1
	cfg.Horizon = 30
	cfg.Epoch = 10
	cfg.Levels = []experiments.DegradedLevel{{NodeFailures: 0, CracDegradations: 0}, {NodeFailures: 2, CracDegradations: 1}}
	return cfg
}

// crashAt panics out of the sweep after the k-th durable commit; the
// journal file is left exactly as a SIGKILL at that instant would leave
// it, because every commit is fsynced before the hook fires.
type crashAt struct{ k int }

func (c crashAt) hook(commits int) {
	if commits == c.k {
		panic(c)
	}
}

func runWithCrash(cfg experiments.DegradedConfig, k int) (crashed bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashAt); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	cfg.CommitHook = crashAt{k}.hook
	_, err = experiments.DegradedSweep(cfg)
	return false, err
}

// TestDegradedSweepCrashResumeMatrix is the sweep-level exact-resume
// property: for every journal commit k, a sweep killed right after commit
// k and resumed from the directory renders a byte-identical table to an
// uninterrupted, checkpoint-free sweep.
func TestDegradedSweepCrashResumeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix re-runs the sweep once per commit")
	}
	base := persistSweepConfig()

	clean, err := experiments.DegradedSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	golden := clean.Render()

	// A checkpointed but uninterrupted sweep must not perturb results,
	// and tells us the total commit count for the kill matrix.
	commits := 0
	full := base
	full.CheckpointDir = filepath.Join(t.TempDir(), "ck")
	full.SnapshotEvery = 3
	full.CommitHook = func(n int) { commits = n }
	res, err := experiments.DegradedSweep(full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Render() != golden {
		t.Fatalf("checkpointing changed the rendered table:\n%s\nvs\n%s", res.Render(), golden)
	}
	if commits < 10 {
		t.Fatalf("sweep too small for a meaningful matrix: %d commits", commits)
	}

	for k := 1; k <= commits; k++ {
		k := k
		t.Run(fmt.Sprintf("kill-at-commit-%d", k), func(t *testing.T) {
			cfg := base
			cfg.CheckpointDir = filepath.Join(t.TempDir(), "ck")
			cfg.SnapshotEvery = 3
			crashed, err := runWithCrash(cfg, k)
			if err != nil {
				t.Fatalf("pre-crash sweep error: %v", err)
			}
			if !crashed {
				t.Fatalf("sweep finished before commit %d", k)
			}
			cfg.CommitHook = nil
			cfg.Resume = true
			res, err := experiments.DegradedSweep(cfg)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if got := res.Render(); got != golden {
				t.Errorf("resumed table diverges from the uninterrupted run:\n%s\nwant:\n%s", got, golden)
			}
		})
	}
}

// TestDegradedSweepResumeTornTail appends a torn record to the journal of
// a killed sweep; resume must truncate it and still render the golden
// table (over-truncation recomputes the lost epoch deterministically).
func TestDegradedSweepResumeTornTail(t *testing.T) {
	base := persistSweepConfig()
	clean, err := experiments.DegradedSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	golden := clean.Render()

	cfg := base
	cfg.CheckpointDir = filepath.Join(t.TempDir(), "ck")
	crashed, err := runWithCrash(cfg, 5)
	if err != nil || !crashed {
		t.Fatalf("pre-crash sweep: crashed=%v err=%v", crashed, err)
	}
	jpath := filepath.Join(cfg.CheckpointDir, persist.JournalFile)
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Half a record header: the classic torn write.
	if _, err := f.Write([]byte{9, 9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg.CommitHook = nil
	cfg.Resume = true
	res, err := experiments.DegradedSweep(cfg)
	if err != nil {
		t.Fatalf("resume over torn tail: %v", err)
	}
	if got := res.Render(); got != golden {
		t.Errorf("torn-tail resume diverges:\n%s\nwant:\n%s", got, golden)
	}
}

// TestDegradedSweepResumeRejectsCorruption flips a bit in a non-tail
// journal record: resume must fail with a typed persist error, classified
// into the solver-error taxonomy, and never silently replay.
func TestDegradedSweepResumeRejectsCorruption(t *testing.T) {
	cfg := persistSweepConfig()
	cfg.CheckpointDir = filepath.Join(t.TempDir(), "ck")
	cfg.SnapshotEvery = -1 // keep every record load-bearing
	crashed, err := runWithCrash(cfg, 6)
	if err != nil || !crashed {
		t.Fatalf("pre-crash sweep: crashed=%v err=%v", crashed, err)
	}
	jpath := filepath.Join(cfg.CheckpointDir, persist.JournalFile)
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(jpath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.CommitHook = nil
	cfg.Resume = true
	_, err = experiments.DegradedSweep(cfg)
	if err == nil {
		t.Fatal("resume silently accepted a corrupted journal")
	}
	var pe *persist.Error
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a persist.Error", err)
	}
	if solvererr.KindOf(err) != solvererr.Persist {
		t.Errorf("error classifies as %v, want Persist", solvererr.KindOf(err))
	}
}

// TestDegradedSweepResumeRejectsConfigChange: resuming under different
// sweep parameters must fail with a run-tag mismatch.
func TestDegradedSweepResumeRejectsConfigChange(t *testing.T) {
	cfg := persistSweepConfig()
	cfg.CheckpointDir = filepath.Join(t.TempDir(), "ck")
	crashed, err := runWithCrash(cfg, 4)
	if err != nil || !crashed {
		t.Fatalf("pre-crash sweep: crashed=%v err=%v", crashed, err)
	}
	cfg.CommitHook = nil
	cfg.Resume = true
	cfg.Seed++ // a different experiment entirely
	_, err = experiments.DegradedSweep(cfg)
	var pe *persist.Error
	if !errors.As(err, &pe) || pe.Kind != persist.KindMismatch {
		t.Fatalf("resume under a changed config returned %v, want KindMismatch", err)
	}
}

// TestDegradedSweepResumeWithoutDir: Resume without a directory is a
// configuration error, not a silent fresh start.
func TestDegradedSweepResumeWithoutDir(t *testing.T) {
	cfg := persistSweepConfig()
	cfg.Resume = true
	if _, err := experiments.DegradedSweep(cfg); err == nil {
		t.Fatal("resume without a checkpoint directory succeeded")
	}
}
