package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"thermaldc/internal/assign"
	"thermaldc/internal/controller"
	"thermaldc/internal/faults"
	"thermaldc/internal/flightrec"
	"thermaldc/internal/linprog"
	"thermaldc/internal/scenario"
	"thermaldc/internal/stats"
	"thermaldc/internal/telemetry"
	"thermaldc/internal/workload"
)

// DegradedLevel is one severity point of the degraded-operation sweep.
type DegradedLevel struct {
	// NodeFailures and CracDegradations count the faults injected at this
	// level (degradations draw flow factors from the generator's default
	// [0.5, 0.85] band).
	NodeFailures, CracDegradations int
}

// DegradedConfig controls the degraded-operation experiment: the same
// fault schedules hit an open-loop run (the paper's frozen plan) and a
// re-optimizing run (internal/controller), and the sweep reports reward
// rate and constraint telemetry per severity level.
type DegradedConfig struct {
	// NCracs/NNodes/StaticShare/Vprop/Seed: scenario knobs.
	NCracs, NNodes int
	StaticShare    float64
	Vprop          float64
	Seed           int64
	// Horizon is the simulated window (s); Epoch the re-optimization grid.
	Horizon, Epoch float64
	// Trials averages each level over several (scenario, schedule, stream)
	// draws.
	Trials int
	// Levels is the severity axis.
	Levels []DegradedLevel
	// Options for the first-step assignment at each (re)solve.
	Options assign.Options
	// SolveTimeout bounds each closed-loop epoch re-solve; when the budget
	// runs out the controller's degradation ladder takes over. Zero means
	// no deadline.
	SolveTimeout time.Duration
	// Recorder, when non-nil, threads telemetry through every controller
	// run of the sweep (closed and open loop): metrics accumulate across
	// the whole sweep, and if a series sink is attached, each run writes
	// its per-epoch rows under a fresh run number (JSONLWriter.NextRun).
	Recorder *telemetry.Recorder
	// FlightRec, when non-nil, arms the failure flight recorder on every
	// closed-loop run of the sweep (see controller.Config.FlightRec).
	// Excluded from the checkpoint run tag, like all telemetry: it never
	// changes results.
	FlightRec *flightrec.Recorder
	// CheckpointDir, when non-empty, makes the sweep crash-safe: every
	// completed closed-loop epoch and finished run is committed durably to
	// a journal in this directory (see internal/persist), with periodic
	// snapshots. Empty — the default — keeps the sweep on the unpersisted
	// fast path.
	CheckpointDir string
	// Resume recovers the sweep from CheckpointDir instead of starting
	// fresh: finished runs are skipped (their journaled summaries feed the
	// same accumulation), the interrupted closed-loop run continues at its
	// next epoch, and the completed sweep renders byte-identically to an
	// uninterrupted one.
	Resume bool
	// SnapshotEvery is the snapshot period in journal commits (0 means a
	// default of 8; negative disables snapshots).
	SnapshotEvery int
	// CommitHook, when non-nil, is called after every durable journal
	// commit with the running commit count. Crash-injection tests and the
	// CLI's -crash-after flag use it to die at an exact persistence point.
	CommitHook func(commits int)
}

// DefaultDegradedConfig returns a reduced-scale sweep: severity grows from
// a healthy run to 30% of the fleet dead with both CRACs degraded.
func DefaultDegradedConfig(seed int64) DegradedConfig {
	return DegradedConfig{
		NCracs:      2,
		NNodes:      20,
		StaticShare: 0.3,
		Vprop:       0.1,
		Seed:        seed,
		Horizon:     60,
		Epoch:       15,
		Trials:      3,
		Levels: []DegradedLevel{
			{0, 0}, {2, 0}, {2, 1}, {4, 1}, {6, 2},
		},
		Options: assign.DefaultOptions(),
	}
}

// DegradedRow aggregates one severity level over the trials.
type DegradedRow struct {
	Level DegradedLevel
	// OpenReward and ClosedReward are mean reward rates (reward/s).
	OpenReward, ClosedReward float64
	// OpenLost and ClosedLost are mean lost-task counts.
	OpenLost, ClosedLost float64
	// GainPct = 100·(Closed − Open)/Open.
	GainPct float64
	// *PowerExcess / *InletExcess are the worst constraint excursions seen
	// across the trials (kW above the cap / °C above a redline; ≤ 0 means
	// the constraint held everywhere).
	OpenPowerExcess, OpenInletExcess     float64
	ClosedPowerExcess, ClosedInletExcess float64
	// Resolves and Fallbacks total the closed loop's re-solves and
	// safe-plan activations across the trials; Retries totals backed-off
	// solve retries and RungCounts tallies epochs per degradation-ladder
	// rung (warm, cold, retry, prev-plan, all-off).
	Resolves, Fallbacks int
	Retries             int
	RungCounts          [controller.NumRungs]int
	// LP sums the closed loop's simplex counters (solves, pivots, workspace
	// bytes allocated) across the trials.
	LP linprog.Stats
}

// DegradedResult is the full sweep.
type DegradedResult struct {
	Config DegradedConfig
	Rows   []DegradedRow
}

// DegradedSweep runs the experiment.
func DegradedSweep(cfg DegradedConfig) (*DegradedResult, error) {
	return DegradedSweepContext(context.Background(), cfg)
}

// DegradedSweepContext is DegradedSweep under a context: canceling ctx
// stops the sweep between epochs (flushing any journal first, so a
// canceled checkpointed sweep resumes exactly where it stopped).
func DegradedSweepContext(ctx context.Context, cfg DegradedConfig) (*DegradedResult, error) {
	if cfg.Horizon <= 0 || cfg.Epoch <= 0 || cfg.Trials <= 0 || len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("experiments: degraded sweep needs positive horizon, epoch, trials and at least one level")
	}
	baseRun := controller.DefaultConfig(cfg.Horizon, cfg.Epoch)
	baseRun.Assign = cfg.Options
	baseRun.SolveTimeout = cfg.SolveTimeout
	baseRun.Recorder = cfg.Recorder
	baseRun.FlightRec = cfg.FlightRec
	ck, err := openSweepCheckpoint(cfg, baseRun)
	if err != nil {
		return nil, err
	}
	defer ck.Close()

	res := &DegradedResult{Config: cfg}
	for li, lvl := range cfg.Levels {
		row := DegradedRow{
			Level:             lvl,
			OpenPowerExcess:   math.Inf(-1),
			OpenInletExcess:   math.Inf(-1),
			ClosedPowerExcess: math.Inf(-1),
			ClosedInletExcess: math.Inf(-1),
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			closedSum, err := degradedRun(ctx, cfg, ck, runKey{Level: li, Trial: trial}, lvl, baseRun)
			if err != nil {
				return nil, err
			}
			openSum, err := degradedRun(ctx, cfg, ck, runKey{Level: li, Trial: trial, Open: true}, lvl, baseRun)
			if err != nil {
				return nil, err
			}

			cfg.Recorder.Logger().Debug("degraded trial done",
				"node_failures", lvl.NodeFailures, "crac_degradations", lvl.CracDegradations,
				"trial", trial, "closed_reward_rate", closedSum.RewardRate, "open_reward_rate", openSum.RewardRate)

			row.ClosedReward += closedSum.RewardRate
			row.OpenReward += openSum.RewardRate
			row.ClosedLost += float64(closedSum.Lost)
			row.OpenLost += float64(openSum.Lost)
			row.Resolves += closedSum.Resolves
			row.Fallbacks += closedSum.Fallbacks
			row.Retries += closedSum.Retries
			row.LP.Add(closedSum.LP)
			for i, c := range closedSum.RungCounts {
				row.RungCounts[i] += c
			}
			row.ClosedPowerExcess = math.Max(row.ClosedPowerExcess, closedSum.MaxPowerExcess)
			row.ClosedInletExcess = math.Max(row.ClosedInletExcess, closedSum.MaxInletExcess)
			row.OpenPowerExcess = math.Max(row.OpenPowerExcess, openSum.MaxPowerExcess)
			row.OpenInletExcess = math.Max(row.OpenInletExcess, openSum.MaxInletExcess)
		}
		n := float64(cfg.Trials)
		row.ClosedReward /= n
		row.OpenReward /= n
		row.ClosedLost /= n
		row.OpenLost /= n
		if row.OpenReward > 0 {
			row.GainPct = 100 * (row.ClosedReward - row.OpenReward) / row.OpenReward
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// degradedRun executes (or recovers) one run of the sweep and returns its
// row-accumulation summary. Finished runs are served from the journal
// without re-execution; an interrupted closed-loop run resumes from its
// folded checkpoint. Either way the summary is identical to an
// uninterrupted run's — the experiment is deterministic given its seeds.
func degradedRun(ctx context.Context, cfg DegradedConfig, ck *sweepCheckpoint, key runKey, lvl DegradedLevel, baseRun controller.Config) (runSummary, error) {
	if sum, ok := ck.completed(key); ok {
		return sum, nil
	}
	scCfg := scenario.Default(cfg.StaticShare, cfg.Vprop, cfg.Seed+int64(key.Trial))
	scCfg.NCracs, scCfg.NNodes = cfg.NCracs, cfg.NNodes
	sc, err := scenario.Build(scCfg)
	if err != nil {
		return runSummary{}, err
	}
	gen := faults.DefaultGenConfig(cfg.Seed+int64(key.Trial)*101+3, cfg.Horizon, cfg.NCracs, cfg.NNodes)
	gen.NodeFailures = lvl.NodeFailures
	gen.CracDegradations = lvl.CracDegradations
	// The severity axis is lost capacity only: no power steps or
	// sensor offsets, so rows differ in exactly one variable.
	gen.PowerSteps = 0
	gen.SensorOffsets = 0
	schedule, err := faults.Generate(gen)
	if err != nil {
		return runSummary{}, err
	}
	tasks := workload.GenerateTasks(sc.DC, cfg.Horizon, stats.NewRand(cfg.Seed+int64(key.Trial)*7+13))

	run := baseRun
	if key.Open {
		run.Mode = controller.OpenLoop
	} else if ck != nil {
		resume, err := ck.begin(key)
		if err != nil {
			return runSummary{}, err
		}
		run.Resume = resume
		run.Checkpoint = ck.sink(key)
	}
	// Advance the series and trace run numbers in lockstep, so exported
	// trace pids line up with the time series' run column.
	cfg.Recorder.SeriesSink().NextRun()
	cfg.Recorder.Tracer().NextRun()
	r, err := controller.RunContext(ctx, sc.DC, schedule, tasks, run)
	if err != nil {
		return runSummary{}, err
	}
	sum := summarize(r)
	if err := ck.finishRun(key, sum); err != nil {
		return runSummary{}, err
	}
	return sum, nil
}

// Render prints the sweep as a table.
func (r *DegradedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Degraded operation: open-loop vs re-optimizing (%d nodes, %d CRACs, %d trials, horizon %.0f s, epoch %.0f s)\n",
		r.Config.NNodes, r.Config.NCracs, r.Config.Trials, r.Config.Horizon, r.Config.Epoch)
	fmt.Fprintf(&b, "excess columns: worst kW above the power cap / worst °C above a redline (<= 0 means the constraint held)\n")
	fmt.Fprintf(&b, "ladder column: closed-loop epochs per degradation rung warm/cold/retry/prev/off (see controller.Rung)\n")
	fmt.Fprintf(&b, "lp columns: closed-loop simplex solves / pivots / workspace KiB allocated (0 KiB = fully warm tableaus)\n\n")
	fmt.Fprintf(&b, "%6s %6s | %11s %9s %7s %7s | %11s %9s %7s %7s | %8s | %-15s %7s | %8s %9s %7s\n",
		"nodes", "cracs",
		"open rew/s", "open lost", "pow+kW", "inl+°C",
		"cl rew/s", "cl lost", "pow+kW", "inl+°C", "gain%", "ladder w/c/r/p/o", "retries",
		"lp slv", "lp piv", "lp KiB")
	for _, row := range r.Rows {
		rc := row.RungCounts
		fmt.Fprintf(&b, "%6d %6d | %11.1f %9.1f %7.2f %7.2f | %11.1f %9.1f %7.2f %7.2f | %+8.1f | %3d/%d/%d/%d/%d %10d | %8d %9d %7.0f\n",
			row.Level.NodeFailures, row.Level.CracDegradations,
			row.OpenReward, row.OpenLost, row.OpenPowerExcess, row.OpenInletExcess,
			row.ClosedReward, row.ClosedLost, row.ClosedPowerExcess, row.ClosedInletExcess,
			row.GainPct, rc[0], rc[1], rc[2], rc[3], rc[4], row.Retries,
			row.LP.Solves, row.LP.Pivots, float64(row.LP.AllocBytes)/1024)
	}
	return b.String()
}
