package experiments_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"thermaldc/internal/experiments"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files from the current output")

// TestFig6SmallGolden pins the rendered Figure-6 output of a reduced-scale
// run byte for byte. The fault/controller subsystem must be invisible when
// faults are disabled: any drift in the assignment pipeline, simulator or
// rendering shows up here as a diff.
func TestFig6SmallGolden(t *testing.T) {
	cfg := experiments.DefaultFig6Config()
	cfg.Trials = 2
	cfg.NNodes = 10
	cfg.NCracs = 2
	cfg.SimHorizon = 30
	res, err := experiments.Figure6(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, filepath.Join("testdata", "fig6_small.golden"), res.Render())
}

// TestFig6FullGolden re-runs the paper-scale Figure-6 experiment and
// compares it byte for byte against the committed fig6_full.txt. It takes
// ~10 minutes on one core, so it only runs when TAPO_GOLDEN_FULL is set
// (the fast small-scale golden above covers the same code paths).
func TestFig6FullGolden(t *testing.T) {
	if os.Getenv("TAPO_GOLDEN_FULL") == "" {
		t.Skip("set TAPO_GOLDEN_FULL=1 to run the paper-scale golden comparison")
	}
	res, err := experiments.Figure6(experiments.DefaultFig6Config(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// fig6_full.txt was captured from `tapo fig6`, whose fmt.Println appends
	// one newline to Render()'s output; mirror that here.
	compareGolden(t, filepath.Join("..", "..", "fig6_full.txt"), res.Render()+"\n")
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
