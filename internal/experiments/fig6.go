// Package experiments regenerates every table and figure of the paper's
// evaluation: Table I (node-type parameters), Table II (EC/RC ranges),
// Figures 3-5 (reward-rate function examples), Figure 6 (the headline
// improvement comparison), plus extension sweeps (power cap, ψ, Vprop,
// static share, temperature-search ablation) and the second-step
// dynamic-scheduler validation. Trials are independent and run on a
// worker pool sized to the machine.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"thermaldc/internal/assign"
	"thermaldc/internal/scenario"
	"thermaldc/internal/sched"
	"thermaldc/internal/sim"
	"thermaldc/internal/stats"
	"thermaldc/internal/workload"
)

// Fig6Config controls the Figure-6 experiment.
type Fig6Config struct {
	// Trials per group (paper: 25).
	Trials int
	// NCracs and NNodes size each data center (paper: 3 and 150).
	NCracs, NNodes int
	// BaseSeed separates experiment repetitions; trial t of group g uses
	// seed BaseSeed + 1000·g + t.
	BaseSeed int64
	// Psis are the ψ values compared (paper: 25 and 50); a best-of cell is
	// always added.
	Psis []float64
	// Options for the assignment techniques (search window, strategy).
	Options assign.Options
	// Parallelism caps concurrent trials (0 = GOMAXPROCS).
	Parallelism int
	// Groups are the parameter combinations; nil = the paper's three.
	Groups []Fig6Group
	// SimHorizon, when positive, additionally runs the second-step
	// dynamic-scheduler simulation for both techniques over this many
	// seconds and records the *realized* (completed-in-window) improvement
	// alongside the Stage-3 steady-state one.
	SimHorizon float64
	// SimPaperPolicy selects the paper's strict min-ratio rule for the
	// simulation; false (default) uses the opportunistic soft variant.
	SimPaperPolicy bool
}

// Fig6Group is one column group of Figure 6.
type Fig6Group struct {
	// StaticShare is the static fraction of P-state-0 core power.
	StaticShare float64
	// Vprop is the ECS frequency-proportionality variation.
	Vprop float64
}

// Label renders the group as the paper captions it.
func (g Fig6Group) Label() string {
	return fmt.Sprintf("static %.0f%%, Vprop %.1f", g.StaticShare*100, g.Vprop)
}

// PaperGroups returns the paper's three Figure-6 column groups in order.
func PaperGroups() []Fig6Group {
	return []Fig6Group{
		{StaticShare: 0.3, Vprop: 0.1},
		{StaticShare: 0.3, Vprop: 0.3},
		{StaticShare: 0.2, Vprop: 0.3},
	}
}

// DefaultFig6Config returns the paper's full-scale setup.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Trials:   25,
		NCracs:   3,
		NNodes:   150,
		BaseSeed: 1,
		Psis:     []float64{25, 50},
		Options:  assign.DefaultOptions(),
	}
}

// Fig6Trial is the outcome of one simulation run within a group.
type Fig6Trial struct {
	Seed           int64
	BaselineReward float64
	// RewardByPsi[p] is the three-stage reward rate at Psis[p].
	RewardByPsi []float64
	// ImprovementByPsi[p] = 100·(RewardByPsi[p] − Baseline)/Baseline.
	ImprovementByPsi []float64
	// BestImprovement uses the best ψ per trial (the paper's third bar).
	BestImprovement float64
	// Realized* mirror the above from the second-step simulation
	// (populated only when Config.SimHorizon > 0); the best ψ by Stage-3
	// reward is the one simulated. "Admitted" counts every accepted task
	// (steady-state estimator); "Realized" counts only completions inside
	// the horizon (censored lower bound).
	RealizedBaseline    float64
	RealizedThreeStage  float64
	RealizedImprovement float64
	AdmittedImprovement float64
}

// Fig6GroupResult aggregates one column group.
type Fig6GroupResult struct {
	Group  Fig6Group
	Trials []Fig6Trial
	// PsiSummaries[p] summarizes ImprovementByPsi[p] across trials;
	// BestSummary summarizes BestImprovement; RealizedSummary summarizes
	// the simulated improvement when SimHorizon > 0.
	PsiSummaries    []stats.Summary
	BestSummary     stats.Summary
	RealizedSummary stats.Summary
	AdmittedSummary stats.Summary
}

// Fig6Result is the full experiment outcome.
type Fig6Result struct {
	Config Fig6Config
	Groups []Fig6GroupResult
}

// Figure6 runs the paper's headline experiment: for every group and trial,
// build a §VI scenario, solve the Equation-21 baseline and the three-stage
// assignment at each ψ, and summarize the percentage improvements with 95%
// confidence intervals.
func Figure6(cfg Fig6Config, progress func(string)) (*Fig6Result, error) {
	return Figure6Context(context.Background(), cfg, progress)
}

// Figure6Context is Figure6 under a context: canceling ctx abandons
// unstarted trials and returns the context's error.
func Figure6Context(ctx context.Context, cfg Fig6Config, progress func(string)) (*Fig6Result, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: Trials must be positive")
	}
	if len(cfg.Psis) == 0 {
		return nil, fmt.Errorf("experiments: need at least one ψ value")
	}
	groups := cfg.Groups
	if groups == nil {
		groups = PaperGroups()
	}
	if progress == nil {
		progress = func(string) {}
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct{ group, trial int }
	type outcome struct {
		job
		res Fig6Trial
		err error
	}
	jobs := make(chan job)
	outcomes := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := ctx.Err(); err != nil {
					outcomes <- outcome{job: j, err: err}
					continue
				}
				tr, err := runFig6Trial(cfg, groups[j.group], cfg.BaseSeed+int64(1000*j.group+j.trial))
				outcomes <- outcome{job: j, res: tr, err: err}
			}
		}()
	}
	go func() {
		for g := range groups {
			for t := 0; t < cfg.Trials; t++ {
				jobs <- job{g, t}
			}
		}
		close(jobs)
	}()
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	perGroup := make([][]Fig6Trial, len(groups))
	var firstErr error
	done := 0
	total := len(groups) * cfg.Trials
	for oc := range outcomes {
		done++
		if oc.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("group %s trial %d: %w", groups[oc.group].Label(), oc.trial, oc.err)
			}
			continue
		}
		perGroup[oc.group] = append(perGroup[oc.group], oc.res)
		progress(fmt.Sprintf("[%d/%d] %s seed %d: baseline %.1f, best %+.2f%%",
			done, total, groups[oc.group].Label(), oc.res.Seed, oc.res.BaselineReward, oc.res.BestImprovement))
	}
	if firstErr != nil {
		return nil, firstErr
	}

	result := &Fig6Result{Config: cfg}
	for g, trials := range perGroup {
		sort.Slice(trials, func(a, b int) bool { return trials[a].Seed < trials[b].Seed })
		gr := Fig6GroupResult{Group: groups[g], Trials: trials}
		for p := range cfg.Psis {
			vals := make([]float64, len(trials))
			for t := range trials {
				vals[t] = trials[t].ImprovementByPsi[p]
			}
			gr.PsiSummaries = append(gr.PsiSummaries, stats.Summarize(vals))
		}
		best := make([]float64, len(trials))
		for t := range trials {
			best[t] = trials[t].BestImprovement
		}
		gr.BestSummary = stats.Summarize(best)
		if cfg.SimHorizon > 0 {
			realized := make([]float64, len(trials))
			admitted := make([]float64, len(trials))
			for t := range trials {
				realized[t] = trials[t].RealizedImprovement
				admitted[t] = trials[t].AdmittedImprovement
			}
			gr.RealizedSummary = stats.Summarize(realized)
			gr.AdmittedSummary = stats.Summarize(admitted)
		}
		result.Groups = append(result.Groups, gr)
	}
	return result, nil
}

// runFig6Trial executes one (group, seed) cell.
func runFig6Trial(cfg Fig6Config, group Fig6Group, seed int64) (Fig6Trial, error) {
	scCfg := scenario.Default(group.StaticShare, group.Vprop, seed)
	scCfg.NCracs = cfg.NCracs
	scCfg.NNodes = cfg.NNodes
	sc, err := scenario.Build(scCfg)
	if err != nil {
		return Fig6Trial{}, err
	}
	bl, err := assign.Baseline(sc.DC, sc.Thermal, cfg.Options)
	if err != nil {
		return Fig6Trial{}, fmt.Errorf("baseline: %w", err)
	}
	tr := Fig6Trial{Seed: seed, BaselineReward: bl.RewardRate}
	best := 0.0
	tsResults := make([]*assign.ThreeStageResult, 0, len(cfg.Psis))
	for _, psi := range cfg.Psis {
		opts := cfg.Options
		opts.Psi = psi
		ts, err := assign.ThreeStage(sc.DC, sc.Thermal, opts)
		if err != nil {
			return Fig6Trial{}, fmt.Errorf("three-stage ψ=%g: %w", psi, err)
		}
		tsResults = append(tsResults, ts)
		r := ts.RewardRate()
		tr.RewardByPsi = append(tr.RewardByPsi, r)
		tr.ImprovementByPsi = append(tr.ImprovementByPsi, 100*(r-bl.RewardRate)/bl.RewardRate)
		if r > best {
			best = r
		}
	}
	tr.BestImprovement = 100 * (best - bl.RewardRate) / bl.RewardRate

	if cfg.SimHorizon > 0 {
		// Simulate the baseline and the best-ψ three-stage assignment on
		// one shared task stream, reusing the per-ψ result already solved
		// above instead of re-running the whole search.
		bestIdx := 0
		for p := range tr.RewardByPsi {
			if tr.RewardByPsi[p] > tr.RewardByPsi[bestIdx] {
				bestIdx = p
			}
		}
		ts := tsResults[bestIdx]
		tasks := workload.GenerateTasks(sc.DC, cfg.SimHorizon, stats.NewRand(seed+800000))
		var policy sched.Policy = sched.SoftRatioPolicy{}
		if cfg.SimPaperPolicy {
			policy = sched.PaperPolicy{}
		}
		blPS, blTC := bl.Assignment(sc.DC)
		blSim, err := sim.RunPolicy(sc.DC, blPS, blTC, tasks, cfg.SimHorizon, policy)
		if err != nil {
			return Fig6Trial{}, err
		}
		tsSim, err := sim.RunPolicy(sc.DC, ts.PStates, ts.Stage3.TC, tasks, cfg.SimHorizon, policy)
		if err != nil {
			return Fig6Trial{}, err
		}
		tr.RealizedBaseline = blSim.WindowRewardRate
		tr.RealizedThreeStage = tsSim.WindowRewardRate
		tr.RealizedImprovement = 100 * (tsSim.WindowRewardRate - blSim.WindowRewardRate) / blSim.WindowRewardRate
		tr.AdmittedImprovement = 100 * (tsSim.RewardRate - blSim.RewardRate) / blSim.RewardRate
	}
	return tr, nil
}

// Render prints the Figure-6 result as the paper's bar groups with 95%
// confidence intervals and a rough ASCII bar.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — average %% improvement of three-stage over Equation-21 baseline\n")
	fmt.Fprintf(&b, "(%d trials per group, %d nodes, %d CRACs)\n\n", r.Config.Trials, r.Config.NNodes, r.Config.NCracs)
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "%s\n", g.Group.Label())
		for p, s := range g.PsiSummaries {
			fmt.Fprintf(&b, "  ψ=%-3.0f  %7.2f%% ± %.2f  %s\n", r.Config.Psis[p], s.Mean, s.HalfCI95, bar(s.Mean))
		}
		fmt.Fprintf(&b, "  best  %7.2f%% ± %.2f  %s\n", g.BestSummary.Mean, g.BestSummary.HalfCI95, bar(g.BestSummary.Mean))
		if r.Config.SimHorizon > 0 {
			pol := "soft policy"
			if r.Config.SimPaperPolicy {
				pol = "paper policy"
			}
			fmt.Fprintf(&b, "  sim   %7.2f%% ± %.2f  %s (admitted, %.0f s, %s)\n",
				g.AdmittedSummary.Mean, g.AdmittedSummary.HalfCI95, bar(g.AdmittedSummary.Mean), r.Config.SimHorizon, pol)
			fmt.Fprintf(&b, "  win   %7.2f%% ± %.2f  %s (completed-in-window)\n",
				g.RealizedSummary.Mean, g.RealizedSummary.HalfCI95, bar(g.RealizedSummary.Mean))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func bar(pct float64) string {
	n := int(pct * 2)
	if n < 0 {
		n = 0
	}
	if n > 60 {
		n = 60
	}
	return strings.Repeat("█", n)
}
