package experiments

import (
	"fmt"
	"strings"

	"thermaldc/internal/layout"
	"thermaldc/internal/model"
)

// Table1 renders the paper's Table I — the two node types' parameters —
// extended with the per-P-state core powers the Appendix-A CMOS model
// derives for the given static share of P-state-0 power.
func Table1(staticShare float64) string {
	types := model.TableINodeTypes(staticShare)
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — node-type parameters (static share %.0f%%)\n\n", staticShare*100)
	fmt.Fprintf(&b, "%-34s %14s %14s\n", "", types[0].Name, types[1].Name)
	row := func(name string, f func(nt *model.NodeType) string) {
		fmt.Fprintf(&b, "%-34s %14s %14s\n", name, f(&types[0]), f(&types[1]))
	}
	row("Base power (kW)", func(nt *model.NodeType) string { return fmt.Sprintf("%.3f", nt.BasePower) })
	row("Number of cores", func(nt *model.NodeType) string { return fmt.Sprintf("%d", nt.NumCores) })
	row("Number of P-states", func(nt *model.NodeType) string { return fmt.Sprintf("%d", nt.NumPStates()) })
	row("P-state 0 power (kW)", func(nt *model.NodeType) string { return fmt.Sprintf("%.5f", nt.Core.P0Power) })
	row("Air flow rate (m³/s)", func(nt *model.NodeType) string { return fmt.Sprintf("%.4f", nt.AirFlow) })
	for k := 0; k < 4; k++ {
		k := k
		row(fmt.Sprintf("P-state %d clock (MHz)", k), func(nt *model.NodeType) string {
			return fmt.Sprintf("%.0f", nt.Core.FreqMHz[k])
		})
	}
	fmt.Fprintf(&b, "\nDerived per-P-state core power (kW), Appendix-A model:\n")
	for k := 0; k < 4; k++ {
		k := k
		row(fmt.Sprintf("π_%d", k), func(nt *model.NodeType) string {
			return fmt.Sprintf("%.5f", nt.Core.PStatePower(k))
		})
	}
	fmt.Fprintf(&b, "\nStatic fraction per P-state (grows as frequency drops):\n")
	for k := 0; k < 4; k++ {
		k := k
		row(fmt.Sprintf("static@P%d", k), func(nt *model.NodeType) string {
			return fmt.Sprintf("%.1f%%", 100*nt.Core.StaticFraction(k))
		})
	}
	return b.String()
}

// Table2 renders the paper's Table II — EC/RC ranges per rack label.
func Table2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — exit/recirculation coefficient ranges by rack position\n\n")
	fmt.Fprintf(&b, "%-6s %-12s %-12s\n", "Label", "EC range", "RC range")
	for l := model.LabelA; l <= model.LabelE; l++ {
		ec, rc := layout.ECRange[l], layout.RCRange[l]
		fmt.Fprintf(&b, "%-6s %3.0f–%-3.0f%%     %3.0f–%-3.0f%%\n",
			l, ec[0]*100, ec[1]*100, rc[0]*100, rc[1]*100)
	}
	return b.String()
}
