package experiments_test

import (
	"math"
	"strings"
	"testing"

	"thermaldc/internal/experiments"
)

func TestDegradedSweep(t *testing.T) {
	cfg := experiments.DefaultDegradedConfig(3)
	cfg.NNodes = 10
	cfg.Trials = 2
	cfg.Horizon = 40
	cfg.Epoch = 10
	cfg.Levels = []experiments.DegradedLevel{{0, 0}, {2, 1}, {3, 1}}
	res, err := experiments.DegradedSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.Levels) {
		t.Fatalf("%d rows for %d levels", len(res.Rows), len(cfg.Levels))
	}
	// Healthy level: the modes coincide, nothing lost, nothing violated.
	// (Tolerance covers summation-order drift: the closed loop accumulates
	// reward per epoch, the open loop over the whole run.)
	base := res.Rows[0]
	if math.Abs(base.ClosedReward-base.OpenReward) > 1e-9 {
		t.Errorf("healthy level: closed %g != open %g", base.ClosedReward, base.OpenReward)
	}
	if base.ClosedLost != 0 || base.OpenLost != 0 {
		t.Error("healthy level lost tasks")
	}
	for _, row := range res.Rows {
		// The closed loop's contract: constraints hold at every severity.
		if row.ClosedPowerExcess > 1e-6 {
			t.Errorf("level %+v: closed loop power excess %g kW", row.Level, row.ClosedPowerExcess)
		}
		if row.ClosedInletExcess > 1e-6 {
			t.Errorf("level %+v: closed loop inlet excess %g °C", row.Level, row.ClosedInletExcess)
		}
		if row.Fallbacks != 0 {
			t.Errorf("level %+v: %d fallbacks", row.Level, row.Fallbacks)
		}
	}
	// Re-optimization must win on reward once nodes die: the frozen plan
	// keeps feeding dead nodes.
	last := res.Rows[len(res.Rows)-1]
	if last.ClosedReward <= last.OpenReward {
		t.Errorf("hardest level: closed %g did not beat open %g", last.ClosedReward, last.OpenReward)
	}
	if last.ClosedLost >= last.OpenLost {
		t.Errorf("hardest level: closed lost %g >= open lost %g", last.ClosedLost, last.OpenLost)
	}

	out := res.Render()
	if !strings.Contains(out, "Degraded operation") || !strings.Contains(out, "gain%") {
		t.Error("render is missing the header")
	}
	if strings.Count(out, "\n") < len(cfg.Levels)+3 {
		t.Error("render is missing rows")
	}
}

func TestDegradedSweepRejectsBadConfig(t *testing.T) {
	cfg := experiments.DefaultDegradedConfig(1)
	cfg.Trials = 0
	if _, err := experiments.DegradedSweep(cfg); err == nil {
		t.Error("zero trials accepted")
	}
	cfg = experiments.DefaultDegradedConfig(1)
	cfg.Levels = nil
	if _, err := experiments.DegradedSweep(cfg); err == nil {
		t.Error("empty levels accepted")
	}
}
