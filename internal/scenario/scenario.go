// Package scenario assembles complete simulation instances per Section VI:
// Table-I node types with uniformly random assignment, the Figure-1
// hot-aisle layout with Appendix-B cross-interference coefficients, §VI.C
// ECS tensors, §VI.D task types, and the Equation-17/18 power constraint.
// One Config + seed deterministically yields one data center, ready for
// the assignment techniques and the dynamic-scheduler simulation.
package scenario

import (
	"fmt"

	"thermaldc/internal/assign"
	"thermaldc/internal/layout"
	"thermaldc/internal/model"
	"thermaldc/internal/stats"
	"thermaldc/internal/tempsearch"
	"thermaldc/internal/thermal"
	"thermaldc/internal/workload"
)

// Config selects the scenario's size and the experiment knobs.
type Config struct {
	// NCracs and NNodes size the data center (paper: 3 and 150).
	NCracs, NNodes int
	// StaticShare is the static fraction of P-state-0 core power
	// (paper: 0.3 or 0.2; Figure-6 knob).
	StaticShare float64
	// Vprop is the ECS frequency-proportionality variation
	// (paper: 0.1 or 0.3; Figure-6 knob).
	Vprop float64
	// Seed drives every random draw in the scenario.
	Seed int64
	// PconstFraction places Pconst between Pmin (0) and Pmax (1);
	// the paper's Equation 18 uses 0.5.
	PconstFraction float64
	// Type1Fraction is the probability that a node is node type 1 (the HP
	// server). 0 means the paper's uniform draw (0.5); use small/large
	// values to study how heterogeneity itself affects the techniques.
	Type1Fraction float64
	// Layout overrides the floor-plan parameters (zero value = defaults).
	Layout layout.Config
	// Search overrides the bounds-search window (zero value = defaults).
	Search tempsearch.Config
	// Workload overrides the §VI generator (zero value = defaults with
	// Vprop above).
	Workload workload.GenConfig
}

// Default returns the paper's simulation setup for one Figure-6 cell:
// 3 CRACs, 150 nodes, the given static share and Vprop, Pconst halfway
// between the bounds.
func Default(staticShare, vprop float64, seed int64) Config {
	return Config{
		NCracs:         3,
		NNodes:         150,
		StaticShare:    staticShare,
		Vprop:          vprop,
		Seed:           seed,
		PconstFraction: 0.5,
	}
}

func (c Config) withDefaults() Config {
	if c.NCracs == 0 {
		c.NCracs = 3
	}
	if c.NNodes == 0 {
		c.NNodes = 150
	}
	if c.PconstFraction == 0 {
		c.PconstFraction = 0.5
	}
	if c.Layout.NodesPerRack == 0 {
		c.Layout = layout.DefaultConfig()
	}
	if c.Search.CoarseStep == 0 {
		c.Search = tempsearch.DefaultConfig()
	}
	if c.Workload.T == 0 {
		c.Workload = workload.DefaultGenConfig(c.Vprop)
	}
	return c
}

// Scenario is a fully built instance.
type Scenario struct {
	Config  Config
	DC      *model.DataCenter
	Thermal *thermal.Model
	// Pmin and Pmax are the Equation-17 power bounds.
	Pmin, Pmax float64
}

// Build constructs the scenario deterministically from cfg.Seed.
func Build(cfg Config) (*Scenario, error) {
	cfg = cfg.withDefaults()
	rng := stats.NewRand(cfg.Seed)

	dc := &model.DataCenter{
		NodeTypes:   model.TableINodeTypes(cfg.StaticShare),
		CRACs:       make([]model.CRAC, cfg.NCracs),
		RedlineNode: model.DefaultRedlineNode,
		RedlineCRAC: model.DefaultRedlineCRAC,
	}
	// Random node types: uniform per Section VI.B, or biased by
	// Type1Fraction for the heterogeneity sweep. The default path keeps
	// the original Intn draw so recorded experiment outputs stay
	// bit-reproducible.
	for j := 0; j < cfg.NNodes; j++ {
		var typ int
		if cfg.Type1Fraction == 0 {
			typ = rng.Intn(len(dc.NodeTypes))
		} else if rng.Float64() >= cfg.Type1Fraction {
			typ = 1
		}
		dc.Nodes = append(dc.Nodes, model.Node{Type: typ})
	}
	if err := layout.Arrange(dc, cfg.Layout); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := layout.GenerateAlpha(dc, cfg.Layout, rng); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	ecs, err := workload.GenerateECS(dc.NodeTypes, cfg.Workload, rng)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	dc.ECS = ecs
	if err := workload.GenerateTaskTypes(dc, cfg.Workload, rng); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	tm, err := thermal.New(dc)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	pmin, pmax, err := assign.PowerBounds(dc, tm, cfg.Search)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	dc.Pconst = pmin + cfg.PconstFraction*(pmax-pmin)
	if err := dc.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: built an invalid data center: %w", err)
	}
	return &Scenario{Config: cfg, DC: dc, Thermal: tm, Pmin: pmin, Pmax: pmax}, nil
}
