package scenario

import (
	"math"
	"testing"
)

func small(seed int64) Config {
	cfg := Default(0.3, 0.1, seed)
	cfg.NCracs = 2
	cfg.NNodes = 10
	return cfg
}

func TestBuildProducesValidOversubscribedDC(t *testing.T) {
	sc, err := Build(small(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.DC.Validate(); err != nil {
		t.Fatalf("built DC invalid: %v", err)
	}
	if sc.DC.NCN() != 10 || sc.DC.NCRAC() != 2 || sc.DC.T() != 8 {
		t.Fatalf("counts: %d nodes, %d CRACs, %d tasks", sc.DC.NCN(), sc.DC.NCRAC(), sc.DC.T())
	}
	if sc.Pmin >= sc.Pmax {
		t.Fatalf("Pmin %g >= Pmax %g", sc.Pmin, sc.Pmax)
	}
	if math.Abs(sc.DC.Pconst-(sc.Pmin+sc.Pmax)/2) > 1e-9 {
		t.Errorf("Pconst %g not at Equation-18 midpoint", sc.DC.Pconst)
	}
	// Both node types should appear with high probability over 10 draws.
	seen := map[int]bool{}
	for _, n := range sc.DC.Nodes {
		seen[n.Type] = true
	}
	if len(seen) != 2 {
		t.Log("note: only one node type drawn (possible but unlikely)")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(small(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(small(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Pmin != b.Pmin || a.Pmax != b.Pmax {
		t.Error("power bounds differ across identical builds")
	}
	for i := range a.DC.TaskTypes {
		if a.DC.TaskTypes[i] != b.DC.TaskTypes[i] {
			t.Fatal("task types differ across identical builds")
		}
	}
	for i := range a.DC.Alpha {
		for j := range a.DC.Alpha[i] {
			if a.DC.Alpha[i][j] != b.DC.Alpha[i][j] {
				t.Fatal("alpha differs across identical builds")
			}
		}
	}
}

func TestBuildSeedsDiffer(t *testing.T) {
	a, err := Build(small(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(small(2))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.DC.TaskTypes {
		if a.DC.TaskTypes[i] != b.DC.TaskTypes[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestPconstFraction(t *testing.T) {
	lo := small(3)
	lo.PconstFraction = 0.25
	hi := small(3)
	hi.PconstFraction = 0.75
	a, err := Build(lo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(hi)
	if err != nil {
		t.Fatal(err)
	}
	if a.DC.Pconst >= b.DC.Pconst {
		t.Errorf("Pconst not monotone in fraction: %g vs %g", a.DC.Pconst, b.DC.Pconst)
	}
	wantA := a.Pmin + 0.25*(a.Pmax-a.Pmin)
	if math.Abs(a.DC.Pconst-wantA) > 1e-9 {
		t.Errorf("Pconst %g, want %g", a.DC.Pconst, wantA)
	}
}

func TestWithDefaultsFillsZeroValues(t *testing.T) {
	cfg := Config{Seed: 1, StaticShare: 0.3, Vprop: 0.1}
	got := cfg.withDefaults()
	if got.NCracs != 3 || got.NNodes != 150 || got.PconstFraction != 0.5 {
		t.Errorf("defaults wrong: %+v", got)
	}
	if got.Layout.NodesPerRack != 5 || got.Search.CoarseStep == 0 || got.Workload.T != 8 {
		t.Errorf("sub-config defaults wrong: %+v", got)
	}
	if got.Workload.Vprop != 0.1 {
		t.Errorf("Vprop not threaded into workload config: %g", got.Workload.Vprop)
	}
}
