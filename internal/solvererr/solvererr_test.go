package solvererr

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"thermaldc/internal/linprog"
	"thermaldc/internal/tempsearch"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Unknown: "unknown", Infeasible: "infeasible", Unbounded: "unbounded",
		IterationLimit: "iteration-limit", Cycling: "cycling",
		Numerical: "numerical", Timeout: "timeout", Panic: "panic",
		WarmStartRejected: "warm-start-rejected",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Errorf("out-of-range kind = %q, want unknown", Kind(99).String())
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Kind
	}{
		{nil, Unknown},
		{errors.New("plain"), Unknown},
		{context.Canceled, Timeout},
		{context.DeadlineExceeded, Timeout},
		{fmt.Errorf("wrapped: %w", context.Canceled), Timeout},
		{linprog.ErrMalformed, Numerical},
		{linprog.ErrNumerical, Numerical},
		{linprog.ErrCycling, Cycling},
		{tempsearch.ErrNoFeasible, Infeasible},
		{&linprog.StatusError{Status: linprog.Infeasible}, Infeasible},
		{&linprog.StatusError{Status: linprog.Unbounded}, Unbounded},
		{&linprog.StatusError{Status: linprog.IterLimit}, IterationLimit},
		{&linprog.StatusError{Status: linprog.Canceled}, Timeout},
		{&linprog.StatusError{Status: linprog.Malformed}, Numerical},
		{New("stage1", Panic, errors.New("boom")), Panic},
		{linprog.ErrWarmStartRejected, WarmStartRejected},
		// The marker wins over the co-wrapped underlying failure: the
		// actionable remedy is discarding the retained basis.
		{fmt.Errorf("%w (%w)", linprog.ErrNumerical, linprog.ErrWarmStartRejected), WarmStartRejected},
		{fmt.Errorf("%w (%w)", linprog.ErrCycling, linprog.ErrWarmStartRejected), WarmStartRejected},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
		if got := KindOf(c.err); got != c.want {
			t.Errorf("KindOf(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestWrapTagsStageAndKind(t *testing.T) {
	err := Wrap("stage1", &linprog.StatusError{Status: linprog.Infeasible})
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("Wrap did not produce a SolveError: %v", err)
	}
	if se.Stage != "stage1" || se.Kind != Infeasible {
		t.Fatalf("got stage=%q kind=%v", se.Stage, se.Kind)
	}
}

func TestWrapNilStaysNil(t *testing.T) {
	if Wrap("stage1", nil) != nil {
		t.Fatal("Wrap(nil) != nil")
	}
}

// TestWrapInnermostStageWins: the layer closest to the failure names it;
// outer layers must not re-tag.
func TestWrapInnermostStageWins(t *testing.T) {
	inner := Wrap("stage2", errors.New("bad targets"))
	outer := Wrap("controller", fmt.Errorf("epoch 3: %w", inner))
	var se *SolveError
	if !errors.As(outer, &se) {
		t.Fatalf("no SolveError in %v", outer)
	}
	if se.Stage != "stage2" {
		t.Fatalf("stage = %q, want the innermost (stage2)", se.Stage)
	}
}

// TestUnwrapPreservesSentinels: classification must not hide the cause
// chain from errors.Is.
func TestUnwrapPreservesSentinels(t *testing.T) {
	err := Wrap("search", fmt.Errorf("search: %w", context.Canceled))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(%v, context.Canceled) = false", err)
	}
}

func TestSolveErrorMessage(t *testing.T) {
	e := New("stage3", Unbounded, errors.New("ray found"))
	want := "stage3 solve failed (unbounded): ray found"
	if e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
}
