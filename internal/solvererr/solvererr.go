// Package solvererr defines the structured error taxonomy of the solve
// pipeline. Every failure on the path controller → assign → tempsearch →
// linprog is classified into one of a small set of kinds, so callers (the
// epoch controller's degradation ladder, the CLI, tests) can branch on
// *what went wrong* without string matching: an infeasible plant calls for
// a safe fallback plan, an iteration limit or numerical breakdown calls
// for a cold rebuild, and a timeout means the deadline — not the model —
// stopped the solve.
package solvererr

import (
	"context"
	"errors"
	"fmt"

	"thermaldc/internal/linprog"
	"thermaldc/internal/persist"
	"thermaldc/internal/tempsearch"
)

// Kind classifies a solve failure.
type Kind int

const (
	// Unknown is the zero value: the failure did not match any taxonomy
	// class (configuration errors, I/O, programming mistakes surfaced as
	// plain errors).
	Unknown Kind = iota
	// Infeasible: no point satisfies the constraints (or no lattice point
	// of the temperature search was feasible).
	Infeasible
	// Unbounded: the LP objective is unbounded over the feasible set.
	Unbounded
	// IterationLimit: the simplex exhausted its pivot budget without
	// showing signs of cycling.
	IterationLimit
	// Cycling: the simplex stalled on degenerate pivots and did not
	// terminate even under Bland's anti-cycling rule.
	Cycling
	// Numerical: malformed inputs (NaN/Inf) or a returned solution that
	// failed primal residual / bound verification even after rescaling.
	Numerical
	// Timeout: the solve was cut short by its context (deadline exceeded
	// or canceled).
	Timeout
	// Panic: an internal invariant panic was recovered at the controller
	// boundary and converted into an error.
	Panic
	// WarmStartRejected: a dual-simplex warm start was rejected and the
	// cold fallback solve then failed too. The retained basis is suspect
	// (stale or numerically unusable), so the remedy is a cold rebuild of
	// the solver state rather than another retry on the same workspace.
	WarmStartRejected
	// Persist: the checkpoint/restore layer failed — a corrupt or torn
	// journal, a snapshot from a different run configuration, or plain
	// I/O. Recovery must stop loudly: resuming past a persistence defect
	// risks silently diverging from the uninterrupted run.
	Persist

	numKinds
)

// Kinds enumerates every taxonomy class, Unknown first. Telemetry uses
// it to pre-register one labeled counter per kind at wiring time, so the
// hot path increments pre-resolved handles and never allocates a label
// string mid-solve.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

func (k Kind) String() string {
	switch k {
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	case Cycling:
		return "cycling"
	case Numerical:
		return "numerical"
	case Timeout:
		return "timeout"
	case Panic:
		return "panic"
	case WarmStartRejected:
		return "warm-start-rejected"
	case Persist:
		return "persist"
	default:
		return "unknown"
	}
}

// SolveError is a classified failure of one pipeline stage.
type SolveError struct {
	// Stage names the pipeline layer that failed: "search", "stage1",
	// "stage2", "stage3", "baseline", or "controller".
	Stage string
	// Kind is the taxonomy class.
	Kind Kind
	// Cause is the underlying error (never nil).
	Cause error
}

func (e *SolveError) Error() string {
	return fmt.Sprintf("%s solve failed (%s): %v", e.Stage, e.Kind, e.Cause)
}

// Unwrap exposes the cause, so errors.Is still sees context.Canceled,
// linprog.ErrNotOptimal, tempsearch.ErrNoFeasible, etc. through the wrapper.
func (e *SolveError) Unwrap() error { return e.Cause }

// New builds a SolveError with an explicit kind (used for panics and other
// failures that carry no classifiable cause chain).
func New(stage string, kind Kind, cause error) *SolveError {
	return &SolveError{Stage: stage, Kind: kind, Cause: cause}
}

// Wrap classifies err and tags it with the stage. A nil err stays nil, and
// an error already carrying a SolveError is returned unchanged — the
// innermost stage is the most precise.
func Wrap(stage string, err error) error {
	if err == nil {
		return nil
	}
	var se *SolveError
	if errors.As(err, &se) {
		return err
	}
	return &SolveError{Stage: stage, Kind: Classify(err), Cause: err}
}

// Classify maps an arbitrary error from the solve path onto the taxonomy.
func Classify(err error) Kind {
	if err == nil {
		return Unknown
	}
	var se *SolveError
	if errors.As(err, &se) {
		return se.Kind
	}
	var pe *persist.Error
	if errors.As(err, &pe) {
		return Persist
	}
	switch {
	case errors.Is(err, linprog.ErrWarmStartRejected):
		// Checked first: the marker is attached alongside the underlying
		// failure (numerical, cycling, ...) and the rejected warm start is
		// the actionable part — the retained basis must be discarded.
		return WarmStartRejected
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return Timeout
	case errors.Is(err, linprog.ErrMalformed), errors.Is(err, linprog.ErrNumerical):
		return Numerical
	case errors.Is(err, linprog.ErrCycling):
		return Cycling
	case errors.Is(err, tempsearch.ErrNoFeasible):
		return Infeasible
	}
	var st *linprog.StatusError
	if errors.As(err, &st) {
		switch st.Status {
		case linprog.Infeasible:
			return Infeasible
		case linprog.Unbounded:
			return Unbounded
		case linprog.IterLimit:
			return IterationLimit
		case linprog.Canceled:
			return Timeout
		case linprog.Malformed:
			return Numerical
		}
	}
	return Unknown
}

// KindOf reports the taxonomy class of err: the kind of the outermost
// SolveError if one is present, else the direct classification.
func KindOf(err error) Kind { return Classify(err) }
