package assign

import (
	"context"
	"fmt"
	"math"

	"thermaldc/internal/linprog"
	"thermaldc/internal/model"
	"thermaldc/internal/pwl"
	"thermaldc/internal/telemetry"
	"thermaldc/internal/thermal"
)

// Stage1Solver solves the Stage-1 LP (Equation 9) for many CRAC
// outlet-temperature candidates against one (data center, ψ) pair. It
// precomputes everything that does not depend on the outlets — the scaled
// per-node ARR segment variables, the thermal power-sensitivity rows, and
// the LP skeleton — so each Solve only patches the power row's
// coefficients and every row's right-hand side before re-running the
// simplex on preallocated tableau buffers. Temperature searches evaluate
// hundreds of candidates per trial; the incremental path removes the
// dominant rebuild-and-allocate cost from that loop.
//
// Solve produces results identical to Stage1Fixed: the patched problem has
// the same variables, rows, coefficients, and right-hand sides computed
// with the same floating-point operation order, so the simplex visits the
// same vertices (this matters — alternate optima with equal objectives
// would still change Stage-2/Stage-3 downstream).
//
// A Stage1Solver is NOT safe for concurrent use: it owns one LP skeleton
// and one simplex workspace. Parallel searches give each worker its own
// solver via Clone.
type Stage1Solver struct {
	dc   *model.DataCenter
	tm   *thermal.Model
	arrs []*pwl.Func

	p        *linprog.Problem
	segNode  []int // segNode[k]: compute node of segment variable k
	nodeSegs [][]int
	redline  []float64 // dc.Redline(), invariant
	basePow  []float64 // basePow[j] = dc.NodeType(j).BasePower, invariant

	// ws holds the simplex tableau buffers reused across Solves.
	ws linprog.Workspace
	// Scratch buffers for the per-candidate patch step. baseConst retains
	// the power row's constant term from the latest patch so solves can
	// report the linearized power ledger without recomputing it.
	base      []float64
	lin       []thermal.LinearCRACPower
	nodeCoef  []float64
	baseConst float64

	// Telemetry handles. The zero values are no-ops, so an uninstrumented
	// solver pays one predictable-branch per solve; instrumented solves pay
	// two atomic adds and stay allocation-free.
	mSolves telemetry.Counter
	mInfeas telemetry.Counter

	// Scratch result + buffers for the zero-allocation SolveScratchContext
	// path. All are overwritten by the next scratch solve.
	scratch    Stage1Result
	scrCracOut []float64
	scrCore    []float64
	scrPow     []float64
	scrTin     []float64
	scrGP      []float64
	scrCRAC    []float64
}

// NewStage1Solver precomputes the Stage-1 LP skeleton for the given data
// center, thermal model, and per-type ARR envelopes (from nodeARRs at one
// ψ). Construction cannot fail; infeasible outlet candidates surface as
// Solve errors, exactly as with Stage1Fixed.
func NewStage1Solver(dc *model.DataCenter, tm *thermal.Model, arrs []*pwl.Func) *Stage1Solver {
	ncn := dc.NCN()
	s := &Stage1Solver{
		dc:       dc,
		tm:       tm,
		arrs:     arrs,
		p:        linprog.NewProblem(linprog.Maximize),
		nodeSegs: make([][]int, ncn),
		redline:  dc.Redline(),
		basePow:  make([]float64, ncn),
		nodeCoef: make([]float64, ncn),
	}
	for j := 0; j < ncn; j++ {
		s.basePow[j] = dc.NodeType(j).BasePower
	}

	// Segment variables per node, in the exact order Stage1Fixed adds them.
	// Names are left empty: they only appear in error messages and cost a
	// fmt.Sprintf each, which the skeleton pays zero times per candidate.
	for j := 0; j < ncn; j++ {
		nt := dc.NodeType(j)
		scaled := arrs[dc.Nodes[j].Type].Scale(float64(nt.NumCores))
		for _, seg := range scaled.Segments() {
			id := s.p.AddVar("", 0, seg.Length, seg.Slope)
			s.segNode = append(s.segNode, j)
			s.nodeSegs[j] = append(s.nodeSegs[j], id)
		}
	}

	// Power row first (its dual is the power shadow price, read as Dual(0)).
	// Coefficients and rhs are placeholders patched on every Solve.
	powerTerms := make([]linprog.Term, len(s.segNode))
	for k := range powerTerms {
		powerTerms[k] = linprog.Term{Var: k, Coef: 1}
	}
	s.p.AddRow(linprog.LE, 0, powerTerms...)

	// Thermal rows: the coefficients G[t][j] do not depend on the outlets,
	// so they are final; only each row's rhs is patched per candidate. The
	// sparsity pattern (gj == 0 terms skipped) matches Stage1Fixed.
	g := tm.PowerSensitivity()
	var terms []linprog.Term
	for t := 0; t < dc.NumThermal(); t++ {
		terms = terms[:0]
		for j := 0; j < ncn; j++ {
			gj := g.At(t, j)
			if gj == 0 {
				continue
			}
			for _, id := range s.nodeSegs[j] {
				terms = append(terms, linprog.Term{Var: id, Coef: gj})
			}
		}
		s.p.AddRow(linprog.LE, 0, terms...)
	}
	return s
}

// Clone returns an independent solver over the same precomputed scenario,
// for use by another search worker. Clones share only immutable inputs
// (data center, thermal model, ARR envelopes) and inherit the pricing rule
// and telemetry wiring (metric handles are atomic and the tracer is
// internally synchronized, so sharing them across workers is safe).
func (s *Stage1Solver) Clone() *Stage1Solver {
	c := NewStage1Solver(s.dc, s.tm, s.arrs)
	c.p.Pricing = s.p.Pricing
	c.p.Method = s.p.Method
	c.p.WarmStart = s.p.WarmStart
	c.ws.Trace = s.ws.Trace
	c.mSolves, c.mInfeas = s.mSolves, s.mInfeas
	return c
}

// SetRecorder wires the solver to rec: LP-solve spans go to rec's tracer
// (nil tracer = untraced fast path) and per-solve counters to its metrics
// registry. A nil rec (or a rec with tracing disabled) detaches cleanly.
func (s *Stage1Solver) SetRecorder(rec *telemetry.Recorder) {
	s.ws.Trace = rec.Tracer()
	reg := rec.Registry()
	s.mSolves = reg.Counter("tapo_stage1_solves_total",
		"Stage-1 LP solve attempts (full and scratch paths)")
	s.mInfeas = reg.Counter("tapo_stage1_infeasible_total",
		"Stage-1 solves rejected because base power alone violates a redline")
}

// SetPricing selects the simplex pricing rule for this solver's LP (the
// default Dantzig rule is bit-reproducible; devex trades that for speed).
func (s *Stage1Solver) SetPricing(pr linprog.Pricing) { s.p.Pricing = pr }

// SetMethod selects the simplex core for this solver's LP (MethodTableau,
// the zero value, reproduces the golden outputs; MethodRevised enables the
// LU-factorized core and is required for warm starts).
func (s *Stage1Solver) SetMethod(m linprog.Method) { s.p.Method = m }

// SetWarmStart toggles dual-simplex warm starts between solves (effective
// under MethodRevised only). Warm starts engage when consecutive solves
// differ only in right-hand sides — the power-cap-only epoch re-solve —
// and fall back to a cold solve otherwise, so results never change; see
// linprog.Problem.WarmStart.
func (s *Stage1Solver) SetWarmStart(on bool) { s.p.WarmStart = on }

// TakeStats returns the accumulated simplex work counters and resets them,
// giving callers per-epoch deltas.
func (s *Stage1Solver) TakeStats() linprog.Stats {
	st := s.ws.Stats
	s.ws.Stats = linprog.Stats{}
	return st
}

// Workspace exposes the solver's simplex workspace (benchmarks and tests
// assert on buffer identity and allocation behavior).
func (s *Stage1Solver) Workspace() *linprog.Workspace { return &s.ws }

// Solve patches the skeleton for cracOut and runs the simplex, returning
// the same result (and errors) Stage1Fixed would for the same inputs.
func (s *Stage1Solver) Solve(cracOut []float64) (*Stage1Result, error) {
	return s.SolveContext(context.Background(), cracOut)
}

// SolveContext is Solve under a context: the simplex polls ctx between
// pivot batches, so an expired deadline surfaces as a Canceled status
// error instead of a runaway solve. An uncancelled context produces
// results bit-identical to Solve.
func (s *Stage1Solver) SolveContext(ctx context.Context, cracOut []float64) (*Stage1Result, error) {
	dc, tm := s.dc, s.tm
	ncn := dc.NCN()
	s.mSolves.Inc()

	if badRow := s.patch(cracOut); badRow >= 0 {
		// Base power alone violates this redline: infeasible outlets.
		s.mInfeas.Inc()
		return &Stage1Result{CracOut: append([]float64(nil), cracOut...), Feasible: false},
			fmt.Errorf("assign: redline %d violated by base power alone at outlets %v", badRow, cracOut)
	}

	sol, err := s.p.SolveWithContext(ctx, &s.ws)
	if err != nil {
		return &Stage1Result{CracOut: append([]float64(nil), cracOut...), Feasible: false}, err
	}

	res := &Stage1Result{
		CracOut:          append([]float64(nil), cracOut...),
		NodeCorePower:    make([]float64, ncn),
		NodePower:        make([]float64, ncn),
		PredictedARR:     sol.Objective,
		PowerShadowPrice: sol.Dual(0), // the power row is added first
		LinearBasePower:  s.baseConst,
		LinearPower:      s.baseConst,
	}
	for k, node := range s.segNode {
		res.NodeCorePower[node] += sol.Value(k)
		res.LinearPower += s.nodeCoef[node] * sol.Value(k)
	}
	for j := 0; j < ncn; j++ {
		res.NodePower[j] = dc.NodeType(j).BasePower + res.NodeCorePower[j]
		res.ComputePower += res.NodePower[j]
	}
	for _, cp := range tm.CRACPowers(cracOut, res.NodePower) {
		res.CRACPower += cp
	}
	res.TotalPower = res.ComputePower + res.CRACPower
	tin := tm.InletTemps(cracOut, res.NodePower)
	res.Feasible = res.TotalPower <= dc.Pconst+powerTolerance &&
		tm.RedlineSlack(tin) >= -powerTolerance
	return res, nil
}

// patch rewrites the outlet-dependent parts of the LP skeleton for cracOut:
// the power row's coefficients and rhs, and every thermal row's rhs. It
// returns the index of the first thermal row whose redline is violated by
// base power alone (infeasible outlets, LP left partially patched), or −1.
// The accumulation order matches Stage1Fixed exactly so the patched
// coefficients are bit-identical to a fresh build.
func (s *Stage1Solver) patch(cracOut []float64) (badRow int) {
	dc, tm := s.dc, s.tm
	ncn := dc.NCN()

	// Power row (paper constraint 4, linearized CRAC power):
	// Σ_j (B_j + x_j) + Σ_i [Const_i + Σ_j Coef_i[j]·(B_j + x_j)] ≤ Pconst.
	s.base = tm.InletBaseInto(cracOut, s.base)
	s.lin = tm.LinearizeCRACPowerInto(cracOut, s.base, s.lin)
	baseConst := 0.0
	nodeCoef := s.nodeCoef
	for j := 0; j < ncn; j++ {
		nodeCoef[j] = 1
		baseConst += s.basePow[j]
	}
	for _, l := range s.lin {
		baseConst += l.Const
		for j, c := range l.Coef {
			nodeCoef[j] += c
			baseConst += c * s.basePow[j]
		}
	}
	powerTerms := s.p.RowTerms(0)
	for k, node := range s.segNode {
		powerTerms[k].Coef = nodeCoef[node]
	}
	s.p.SetRHS(0, dc.Pconst-baseConst)
	s.baseConst = baseConst

	// Thermal rows (paper constraint 5): coefficients are invariant; only
	// rhs_t = redline_t − base_t(cracOut) − Σ_j G[t][j]·B_j changes.
	g := tm.PowerSensitivity()
	for t := 0; t < dc.NumThermal(); t++ {
		rhs := s.redline[t] - s.base[t]
		grow := g.Row(t)
		for j := 0; j < ncn; j++ {
			rhs -= grow[j] * s.basePow[j]
		}
		if rhs < 0 {
			return t
		}
		s.p.SetRHS(1+t, rhs)
	}
	return -1
}

// errBaseRedline is the allocation-free error SolveScratch returns when a
// redline is violated by base power alone (SolveContext formats a richer
// message naming the row and outlets).
var errBaseRedline = fmt.Errorf("assign: redline violated by base power alone")

// SolveScratch is SolveScratchContext without a context.
func (s *Stage1Solver) SolveScratch(cracOut []float64) (*Stage1Result, error) {
	return s.SolveScratchContext(context.Background(), cracOut)
}

// SolveScratchContext is SolveContext's zero-allocation twin for search and
// epoch hot loops: every number it produces is bit-identical, but the
// returned Stage1Result and all its slices live in the solver and are
// overwritten by the next scratch solve — callers that keep a result copy
// it first. On the warm path (shapes unchanged since the last call) it
// performs no heap allocations at all.
func (s *Stage1Solver) SolveScratchContext(ctx context.Context, cracOut []float64) (*Stage1Result, error) {
	dc, tm := s.dc, s.tm
	ncn := dc.NCN()

	res := &s.scratch
	s.scrCracOut = append(s.scrCracOut[:0], cracOut...)
	*res = Stage1Result{CracOut: s.scrCracOut}
	s.mSolves.Inc()

	if badRow := s.patch(cracOut); badRow >= 0 {
		s.mInfeas.Inc()
		return res, errBaseRedline
	}
	sol, err := s.p.SolveInto(ctx, &s.ws)
	if err != nil {
		return res, err
	}

	s.scrCore = growZero(s.scrCore, ncn)
	s.scrPow = growZero(s.scrPow, ncn)
	res.NodeCorePower = s.scrCore
	res.NodePower = s.scrPow
	res.PredictedARR = sol.Objective
	res.PowerShadowPrice = sol.Dual(0) // the power row is added first
	res.LinearBasePower = s.baseConst
	res.LinearPower = s.baseConst
	for k, node := range s.segNode {
		res.NodeCorePower[node] += sol.Value(k)
		res.LinearPower += s.nodeCoef[node] * sol.Value(k)
	}
	for j := 0; j < ncn; j++ {
		res.NodePower[j] = dc.NodeType(j).BasePower + res.NodeCorePower[j]
		res.ComputePower += res.NodePower[j]
	}
	s.scrTin, s.scrGP = tm.InletTempsInto(cracOut, res.NodePower, s.scrTin, s.scrGP)
	s.scrCRAC = tm.CRACPowersInto(cracOut, s.scrTin, s.scrCRAC)
	for _, cp := range s.scrCRAC {
		res.CRACPower += cp
	}
	res.TotalPower = res.ComputePower + res.CRACPower
	// Inline thermal.Model.RedlineSlack against the cached redline vector:
	// same subtraction per unit, no per-call Redline() allocation.
	slack := math.Inf(1)
	for i, tin := range s.scrTin {
		if sl := s.redline[i] - tin; sl < slack {
			slack = sl
		}
	}
	res.Feasible = res.TotalPower <= dc.Pconst+powerTolerance && slack >= -powerTolerance
	return res, nil
}

// growZero returns a zeroed length-n slice reusing buf's capacity.
func growZero(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		buf = buf[:n]
		clear(buf)
		return buf
	}
	return make([]float64, n)
}
