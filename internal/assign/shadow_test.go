package assign_test

import (
	"testing"

	"thermaldc/internal/assign"
	"thermaldc/internal/pwl"
)

// TestPowerShadowPrice checks that the Stage-1 power dual predicts the
// reward gained from a small increase of Pconst.
func TestPowerShadowPrice(t *testing.T) {
	sc := smallScenario(t, 31)
	arrs := make([]*pwl.Func, len(sc.DC.NodeTypes))
	for j := range arrs {
		f, err := assign.ARR(sc.DC, j, 50)
		if err != nil {
			t.Fatal(err)
		}
		arrs[j] = f
	}
	out := []float64{15, 15}
	base, err := assign.Stage1Fixed(sc.DC, sc.Thermal, arrs, out)
	if err != nil {
		t.Fatal(err)
	}
	if base.PowerShadowPrice <= 0 {
		t.Fatalf("oversubscribed data center should have a positive power shadow price, got %g",
			base.PowerShadowPrice)
	}
	// Finite difference: raise Pconst by 0.05 kW and compare.
	const eps = 0.05
	sc.DC.Pconst += eps
	up, err := assign.Stage1Fixed(sc.DC, sc.Thermal, arrs, out)
	sc.DC.Pconst -= eps
	if err != nil {
		t.Fatal(err)
	}
	fd := (up.PredictedARR - base.PredictedARR) / eps
	rel := (fd - base.PowerShadowPrice) / base.PowerShadowPrice
	if rel < -0.25 || rel > 0.25 {
		t.Errorf("finite difference %g vs shadow price %g", fd, base.PowerShadowPrice)
	}
}
