package assign_test

import (
	"testing"

	"thermaldc/internal/assign"
)

func TestMinPowerForRewardBasics(t *testing.T) {
	sc := smallScenario(t, 21)
	opts := assign.DefaultOptions()
	// First find what reward the primal problem achieves...
	primal, err := assign.ThreeStage(sc.DC, sc.Thermal, opts)
	if err != nil {
		t.Fatal(err)
	}
	// ...then ask for 60% of it: the dual problem should find a cheaper
	// operating point than Pconst.
	floor := 0.6 * primal.RewardRate()
	res, err := assign.MinPowerForReward(sc.DC, sc.Thermal, floor, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RelaxedPower >= sc.DC.Pconst {
		t.Errorf("min power %g should undercut Pconst %g for a 60%% reward floor", res.RelaxedPower, sc.DC.Pconst)
	}
	// The relaxed solution meets the floor by construction; the integer
	// solution may fall slightly short but not by more than a few percent.
	if res.RewardGap > 0.05*floor {
		t.Errorf("integer solution misses the floor by %g (floor %g)", res.RewardGap, floor)
	}
	if res.IntegerPower > res.RelaxedPower+1e-6 {
		t.Errorf("integer power %g exceeds relaxed power %g", res.IntegerPower, res.RelaxedPower)
	}
	if res.SearchEvals <= 0 {
		t.Error("no search evaluations recorded")
	}
}

func TestMinPowerMonotoneInFloor(t *testing.T) {
	sc := smallScenario(t, 22)
	opts := assign.DefaultOptions()
	primal, err := assign.ThreeStage(sc.DC, sc.Thermal, opts)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, frac := range []float64{0.3, 0.6, 0.9} {
		res, err := assign.MinPowerForReward(sc.DC, sc.Thermal, frac*primal.RewardRate(), opts)
		if err != nil {
			t.Fatalf("floor %g: %v", frac, err)
		}
		if res.RelaxedPower < prev-1e-6 {
			t.Errorf("min power not monotone in the floor: %g after %g", res.RelaxedPower, prev)
		}
		prev = res.RelaxedPower
	}
}

func TestMinPowerRejectsBadFloor(t *testing.T) {
	sc := smallScenario(t, 23)
	if _, err := assign.MinPowerForReward(sc.DC, sc.Thermal, 0, assign.DefaultOptions()); err == nil {
		t.Error("zero floor accepted")
	}
	// An absurd floor (far above the arrival bound) must be infeasible.
	bound := 0.0
	for _, tt := range sc.DC.TaskTypes {
		bound += tt.ArrivalRate * tt.Reward
	}
	if _, err := assign.MinPowerForReward(sc.DC, sc.Thermal, 10*bound, assign.DefaultOptions()); err == nil {
		t.Error("unreachable floor accepted")
	}
}
