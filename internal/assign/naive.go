package assign

import (
	"fmt"

	"thermaldc/internal/model"
	"thermaldc/internal/tempsearch"
	"thermaldc/internal/thermal"
)

// NaiveResult is the outcome of the server-level "ondemand-style"
// strawman the paper's introduction argues against: every active core runs
// at P-state 0 (utilization in an oversubscribed data center is ~100%, so
// a utilization-threshold governor never down-clocks), and an admission
// clamp simply turns cores off — evenly across nodes, with no knowledge of
// task rewards — until the power and thermal constraints hold.
type NaiveResult struct {
	// CracOut is the best outlet vector found for the final core count.
	CracOut []float64
	// ActiveCores is the largest feasible number of P-state-0 cores.
	ActiveCores int
	// PStates is the resulting flat assignment (P0 or off).
	PStates []int
	// Stage3 holds the optimal desired rates for that assignment, so the
	// comparison against Equation 21 and the three-stage technique
	// isolates the P-state decision, not the rate assignment.
	Stage3 *Stage3Result
	// TotalPower is the exact power at the solution.
	TotalPower float64
}

// NaiveOndemand computes the strawman assignment: binary-search the
// largest number of active P-state-0 cores (spread round-robin across
// nodes) whose exact power and redlines are feasible for some CRAC outlet
// assignment, then solve the Stage-3 rate LP for it.
func NaiveOndemand(dc *model.DataCenter, tm *thermal.Model, search tempsearch.Config) (*NaiveResult, error) {
	ncores := dc.NumCores()

	feasible := func(k int) ([]float64, float64, bool) {
		pcn := nodePowersForActiveCores(dc, k)
		eval := func(cracOut []float64) (float64, bool) {
			tin := tm.InletTemps(cracOut, pcn)
			if tm.RedlineSlack(tin) < -powerTolerance {
				return 0, false
			}
			return -tm.TotalPower(cracOut, pcn), true
		}
		res, err := tempsearch.CoarseToFine(dc.NCRAC(), search, tempsearch.Shared(eval))
		if err != nil {
			return nil, 0, false
		}
		power := -res.Value
		return res.Out, power, power <= dc.Pconst+powerTolerance
	}

	if _, _, ok := feasible(0); !ok {
		return nil, fmt.Errorf("assign: even the all-off data center violates the constraints")
	}
	lo, hi := 0, ncores // invariant: lo feasible, hi+1 infeasible or hi = max
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if _, _, ok := feasible(mid); ok {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	out, power, _ := feasible(lo)
	pstates := pstatesForActiveCores(dc, lo)
	s3, err := Stage3(dc, pstates)
	if err != nil {
		return nil, err
	}
	return &NaiveResult{
		CracOut:     out,
		ActiveCores: lo,
		PStates:     pstates,
		Stage3:      s3,
		TotalPower:  power,
	}, nil
}

// activeCoreCounts spreads k active cores round-robin across nodes.
func activeCoreCounts(dc *model.DataCenter, k int) []int {
	counts := make([]int, dc.NCN())
	for k > 0 {
		progressed := false
		for j := range counts {
			if k == 0 {
				break
			}
			if counts[j] < dc.NodeType(j).NumCores {
				counts[j]++
				k--
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return counts
}

func nodePowersForActiveCores(dc *model.DataCenter, k int) []float64 {
	counts := activeCoreCounts(dc, k)
	pcn := make([]float64, dc.NCN())
	for j := range pcn {
		nt := dc.NodeType(j)
		pcn[j] = nt.BasePower + float64(counts[j])*nt.Core.PStatePower(0)
	}
	return pcn
}

func pstatesForActiveCores(dc *model.DataCenter, k int) []int {
	counts := activeCoreCounts(dc, k)
	out := make([]int, dc.NumCores())
	for j := range dc.Nodes {
		nt := dc.NodeType(j)
		lo, hi := dc.CoreRange(j)
		for c := lo; c < hi; c++ {
			if c-lo < counts[j] {
				out[c] = 0
			} else {
				out[c] = nt.OffState()
			}
		}
	}
	return out
}
