package assign

import (
	"context"
	"fmt"

	"thermaldc/internal/linprog"
	"thermaldc/internal/model"
	"thermaldc/internal/pwl"
	"thermaldc/internal/solvererr"
	"thermaldc/internal/telemetry"
	"thermaldc/internal/tempsearch"
	"thermaldc/internal/thermal"
)

// Strategy selects how CRAC outlet temperatures are searched.
type Strategy int

const (
	// CoarseToFine is the paper's multi-step discretized search (default).
	CoarseToFine Strategy = iota
	// FullGrid exhaustively scans the FineStep lattice (ablation baseline).
	FullGrid
	// CoordDescent optimizes one CRAC at a time (cheap ablation).
	CoordDescent
)

func (s Strategy) String() string {
	switch s {
	case CoarseToFine:
		return "coarse-to-fine"
	case FullGrid:
		return "full-grid"
	case CoordDescent:
		return "coordinate-descent"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures the first-step assignment.
type Options struct {
	// Psi is the ψ parameter in percent (paper: 25 or 50).
	Psi float64
	// Search bounds/steps for the CRAC outlet-temperature search.
	Search tempsearch.Config
	// Strategy picks the search algorithm.
	Strategy Strategy
	// Pricing selects the simplex pricing rule for every Stage-1 LP
	// (PricingDantzig, the zero value, reproduces the golden outputs).
	Pricing linprog.Pricing
	// Method selects the simplex core for every LP in the pipeline
	// (linprog.MethodTableau, the zero value, reproduces the golden
	// outputs; linprog.MethodRevised enables the LU-factorized core).
	Method linprog.Method
	// WarmStart enables dual-simplex warm starts on the Stage-1 solvers
	// (effective under MethodRevised only): epoch re-solves that change
	// only right-hand sides — a moved power cap at fixed outlets — restart
	// from the previous optimal basis instead of solving cold. Results are
	// identical either way; only the pivot count drops.
	WarmStart bool
	// Recorder, when non-nil, wires the whole pipeline to a telemetry
	// recorder: per-stage and per-LP spans go to its tracer (if tracing is
	// enabled), solve counters to its metrics registry. Nil — the default —
	// keeps every solver on the uninstrumented fast path. Telemetry never
	// changes solver results.
	Recorder *telemetry.Recorder
}

// DefaultOptions returns the paper's defaults (ψ = 50, coarse-to-fine
// search at 1 °C final granularity).
func DefaultOptions() Options {
	return Options{Psi: 50, Search: tempsearch.DefaultConfig(), Strategy: CoarseToFine}
}

// ThreeStageResult is the complete first-step assignment produced by the
// paper's scalable technique.
type ThreeStageResult struct {
	// Stage1 is the relaxed power assignment at the best outlet
	// temperatures found.
	Stage1 *Stage1Result
	// PStates maps each global core index to its assigned P-state.
	PStates []int
	// Stage3 holds the desired execution rates and the realized
	// steady-state reward rate (the headline metric).
	Stage3 *Stage3Result
	// SearchEvals counts Stage-1 LP solves during the temperature search.
	SearchEvals int
}

// RewardRate returns the Stage-3 objective, the metric Figure 6 compares.
func (r *ThreeStageResult) RewardRate() float64 { return r.Stage3.RewardRate }

// ThreeStage runs the paper's full first-step assignment: search the CRAC
// outlet temperatures (Stage-1 LP value as the criterion), then convert
// the winning relaxed power assignment to integer P-states (Stage 2) and
// solve the desired-execution-rate LP (Stage 3).
//
// The search evaluates Stage-1 candidates through an incremental
// Stage1Solver — one per search worker (see tempsearch.Config.Parallelism)
// — so the LP skeleton and simplex tableau are built once per worker, not
// once per candidate. Results are identical to solving each candidate with
// Stage1Fixed serially.
func ThreeStage(dc *model.DataCenter, tm *thermal.Model, opts Options) (*ThreeStageResult, error) {
	s, err := NewThreeStageSolver(dc, tm, opts)
	if err != nil {
		return nil, err
	}
	return s.Solve()
}

// ThreeStageSolver is the warm-start form of ThreeStage: the ARR envelopes
// and the incremental Stage-1 LP are built once, and Solve can be called
// repeatedly. Because the Stage-1 LP reads dc.Pconst at each solve, a
// caller that only changes the power cap (the epoch controller reacting to
// a PowerCap fault) mutates dc.Pconst in place and re-Solves without
// rebuilding anything; structural changes (CRAC flows, node failures,
// redlines) need a fresh solver on a freshly degraded model.
type ThreeStageSolver struct {
	dc   *model.DataCenter
	opts Options
	arrs []*pwl.Func
	base *Stage1Solver

	// workers caches the per-search-worker Stage-1 solvers so repeat Solve
	// calls keep every worker's simplex workspace warm instead of
	// re-cloning per epoch; next indexes the handout within one search.
	// Without warm starts, workers[0] is base; with Options.WarmStart,
	// base is dedicated to the per-epoch final solve (its retained basis
	// signature must survive the search, whose candidates would clobber
	// it) and every worker is a clone.
	workers []*Stage1Solver
	next    int

	// stage3 keeps the Stage-3 group-LP skeleton and workspace warm across
	// epochs.
	stage3 *Stage3Solver

	// rec is the telemetry recorder from Options (nil when uninstrumented);
	// SolveContext records one SpanStage span per pipeline stage on its
	// tracer.
	rec *telemetry.Recorder
}

// Span labels for the SpanStage spans SolveContext records, in pipeline
// order. Exported so span consumers can decode Span.Label.
const (
	StageLabelSearch = iota
	StageLabelStage1
	StageLabelStage2
	StageLabelStage3
)

// NewThreeStageSolver prepares a reusable first-step solver.
func NewThreeStageSolver(dc *model.DataCenter, tm *thermal.Model, opts Options) (*ThreeStageSolver, error) {
	arrs, err := nodeARRs(dc, opts.Psi)
	if err != nil {
		return nil, err
	}
	base := NewStage1Solver(dc, tm, arrs)
	base.SetPricing(opts.Pricing)
	base.SetMethod(opts.Method)
	base.SetWarmStart(opts.WarmStart)
	stage3 := NewStage3Solver(dc)
	stage3.SetMethod(opts.Method)
	if opts.Recorder != nil {
		base.SetRecorder(opts.Recorder)
		stage3.SetRecorder(opts.Recorder)
		// Candidate spans during the temperature search come from the same
		// tracer; search workers are Clones of base, so they inherit the LP
		// wiring automatically.
		opts.Search.Trace = opts.Recorder.Tracer()
	}
	return &ThreeStageSolver{
		dc:     dc,
		opts:   opts,
		arrs:   arrs,
		base:   base,
		rec:    opts.Recorder,
		stage3: stage3,
	}, nil
}

// Stage1Warm returns the retained base Stage-1 solver, whose scratch solve
// path benchmarks and tests exercise directly.
func (s *ThreeStageSolver) Stage1Warm() *Stage1Solver { return s.base }

// TakeLPStats drains and sums the simplex counters of every retained LP
// workspace (all Stage-1 search workers plus the Stage-3 solver). Counters
// reset to zero, so each call reports activity since the previous one.
func (s *ThreeStageSolver) TakeLPStats() linprog.Stats {
	var total linprog.Stats
	total.Add(s.base.TakeStats())
	for _, w := range s.workers {
		if w != s.base {
			total.Add(w.TakeStats())
		}
	}
	total.Add(s.stage3.TakeStats())
	return total
}

// worker hands out the next cached Stage-1 solver for the current search,
// cloning the base skeleton only the first time a given worker slot is
// used. Called from the single goroutine that runs the search factory.
func (s *ThreeStageSolver) worker() *Stage1Solver {
	if s.next < len(s.workers) {
		w := s.workers[s.next]
		s.next++
		return w
	}
	w := s.base
	if len(s.workers) > 0 || s.opts.WarmStart {
		w = s.base.Clone()
		// Search candidates step the CRAC outlets on every evaluation, so
		// the power-row coefficients never repeat and a warm attempt could
		// only reject; keep search clones cold.
		w.SetWarmStart(false)
	}
	s.workers = append(s.workers, w)
	s.next++
	return w
}

// Solve runs the full three-stage assignment against the current model
// state. Repeat calls reuse the LP skeleton and simplex tableau.
func (s *ThreeStageSolver) Solve() (*ThreeStageResult, error) {
	return s.SolveContext(context.Background())
}

// SolveContext is Solve under a context: the temperature search workers,
// the Stage-1 simplex, and the Stage-3 LP all poll ctx, so an expired
// epoch deadline cuts the whole pipeline short with a Timeout-classified
// error instead of finishing a stale solve. Failures of every stage are
// wrapped in a solvererr.SolveError naming the stage and kind; an
// uncancelled context yields results bit-identical to Solve.
func (s *ThreeStageSolver) SolveContext(ctx context.Context) (*ThreeStageResult, error) {
	tr := s.rec.Tracer()
	s.next = 0
	factory := func() tempsearch.Objective {
		// Without warm starts the first worker gets the base solver; later
		// workers (and all workers under WarmStart — see worker) get cached
		// clones, cloned once and reused every epoch. Searches call the
		// factory from a single goroutine, and all workers finish before the
		// search returns, so reusing base afterwards for the final solve is
		// safe.
		solver := s.worker()
		return func(cracOut []float64) (float64, bool) {
			// The scratch solve is bit-identical to SolveContext and
			// allocation-free; the search keeps only (value, ok), never the
			// solver-owned result.
			res, err := solver.SolveScratchContext(ctx, cracOut)
			if err != nil || !res.Feasible {
				return 0, false
			}
			return res.PredictedARR, true
		}
	}
	clk := tr.Begin()
	best, err := runSearch(ctx, s.dc.NCRAC(), s.opts, factory)
	tr.End(clk, telemetry.SpanStage, StageLabelSearch, int64(best.Evals), errBit(err))
	if err != nil {
		return nil, solvererr.Wrap("search", fmt.Errorf("assign: temperature search: %w", err))
	}
	clk = tr.Begin()
	s1, err := s.base.SolveContext(ctx, best.Out)
	tr.End(clk, telemetry.SpanStage, StageLabelStage1, 0, errBit(err))
	if err != nil {
		return nil, solvererr.Wrap("stage1", err)
	}
	clk = tr.Begin()
	pstates, err := Stage2(s.dc, s.arrs, s1)
	tr.End(clk, telemetry.SpanStage, StageLabelStage2, 0, errBit(err))
	if err != nil {
		return nil, solvererr.Wrap("stage2", err)
	}
	clk = tr.Begin()
	s3, err := s.stage3.SolveContext(ctx, pstates)
	tr.End(clk, telemetry.SpanStage, StageLabelStage3, 0, errBit(err))
	if err != nil {
		return nil, solvererr.Wrap("stage3", err)
	}
	return &ThreeStageResult{
		Stage1:      s1,
		PStates:     pstates,
		Stage3:      s3,
		SearchEvals: best.Evals,
	}, nil
}

// FinishFromStage1 completes the pipeline from an externally produced
// Stage-1 result: Stage 2 converts the relaxed power assignment to integer
// P-states and Stage 3 solves the desired-execution-rate LP, both on the
// same cached skeletons SolveContext uses — so a caller that obtained the
// Stage-1 solution elsewhere (the zone-decomposed path in internal/zones)
// pays no search and no skeleton rebuild. The result's SearchEvals is 0;
// everything else matches SolveContext had its search produced s1.
func (s *ThreeStageSolver) FinishFromStage1(ctx context.Context, s1 *Stage1Result) (*ThreeStageResult, error) {
	tr := s.rec.Tracer()
	clk := tr.Begin()
	pstates, err := Stage2(s.dc, s.arrs, s1)
	tr.End(clk, telemetry.SpanStage, StageLabelStage2, 0, errBit(err))
	if err != nil {
		return nil, solvererr.Wrap("stage2", err)
	}
	clk = tr.Begin()
	s3, err := s.stage3.SolveContext(ctx, pstates)
	tr.End(clk, telemetry.SpanStage, StageLabelStage3, 0, errBit(err))
	if err != nil {
		return nil, solvererr.Wrap("stage3", err)
	}
	return &ThreeStageResult{Stage1: s1, PStates: pstates, Stage3: s3}, nil
}

// errBit maps an error to the Span.Err convention used by the stage spans:
// 0 for success, 1 for failure.
func errBit(err error) int32 {
	if err != nil {
		return 1
	}
	return 0
}

// runSearch dispatches on the strategy.
func runSearch(ctx context.Context, ncrac int, opts Options, newEval tempsearch.Factory) (tempsearch.Result, error) {
	switch opts.Strategy {
	case FullGrid:
		return tempsearch.GridContext(ctx, ncrac, opts.Search, opts.Search.FineStep, newEval)
	case CoordDescent:
		return tempsearch.CoordinateDescentContext(ctx, ncrac, opts.Search, nil, newEval)
	default:
		return tempsearch.CoarseToFineContext(ctx, ncrac, opts.Search, newEval)
	}
}
