package assign

import (
	"context"
	"fmt"
	"math"

	"thermaldc/internal/linprog"
	"thermaldc/internal/model"
	"thermaldc/internal/tempsearch"
	"thermaldc/internal/thermal"
)

// BaselineResult is the outcome of the Equation-21 assignment adapted from
// Parolini et al. [26]: cores are either at P-state 0 or off, allocated via
// per-node compute-resource fractions FRAC(i, j).
type BaselineResult struct {
	// CracOut is the outlet-temperature vector used.
	CracOut []float64
	// Frac[i][j] is the fraction of node j's cores executing task type i
	// (after the Equation-22 integer rounding).
	Frac [][]float64
	// RewardRateLP is the LP optimum before rounding; RewardRate is the
	// value after scaling each node's fractions down so its used-core
	// count (Equation 22) is an integer.
	RewardRateLP float64
	RewardRate   float64
	// UsedCores[j] is the integer number of active cores on node j.
	UsedCores []int
	// NodePower, TotalPower: exact power ledger after rounding.
	NodePower  []float64
	TotalPower float64
	// Feasible reports the exact power/redline check.
	Feasible bool
	// SearchEvals counts LP solves during the temperature search.
	SearchEvals int
}

// BaselineFixed solves the Equation-21 LP at fixed CRAC outlet
// temperatures and applies the Equation-22 rounding.
//
// Note: the paper's Equation 19 writes node power as B + π_{j,0}·ΣFRAC,
// while its reward (Equation 21) multiplies by |cores_j|; for the two to
// be consistent FRAC must scale both, so the power term here includes
// |cores_j| as well.
func BaselineFixed(dc *model.DataCenter, tm *thermal.Model, cracOut []float64) (*BaselineResult, error) {
	ncn := dc.NCN()
	t := dc.T()
	p := linprog.NewProblem(linprog.Maximize)

	// Variables FRAC(i, j) with deadline screening at P-state 0.
	varID := make([][]int, t)
	for i := 0; i < t; i++ {
		varID[i] = make([]int, ncn)
		for j := 0; j < ncn; j++ {
			varID[i][j] = -1
			if !deadlineFeasible(dc, i, dc.Nodes[j].Type, 0) {
				continue
			}
			nt := dc.NodeType(j)
			obj := dc.TaskTypes[i].Reward * dc.ECS[i][dc.Nodes[j].Type][0] * float64(nt.NumCores)
			varID[i][j] = p.AddVar(fmt.Sprintf("frac_%d_%d", i, j), 0, 1, obj)
		}
	}

	// Constraint 1: execution rate per task ≤ arrival rate.
	for i := 0; i < t; i++ {
		var terms []linprog.Term
		for j := 0; j < ncn; j++ {
			if id := varID[i][j]; id >= 0 {
				coef := float64(dc.NodeType(j).NumCores) * dc.ECS[i][dc.Nodes[j].Type][0]
				terms = append(terms, linprog.Term{Var: id, Coef: coef})
			}
		}
		if len(terms) > 0 {
			p.AddRow(linprog.LE, dc.TaskTypes[i].ArrivalRate, terms...)
		}
	}
	// Constraint 2: fractions per node sum to ≤ 1.
	for j := 0; j < ncn; j++ {
		var terms []linprog.Term
		for i := 0; i < t; i++ {
			if id := varID[i][j]; id >= 0 {
				terms = append(terms, linprog.Term{Var: id, Coef: 1})
			}
		}
		if len(terms) > 0 {
			p.AddRow(linprog.LE, 1, terms...)
		}
	}

	// Node power: PCN_j = B_j + π_{j,0}·|cores_j|·Σ_i FRAC(i,j). Power and
	// thermal constraints are affine in the per-node used power
	// u_j = π_{j,0}·|cores_j|·ΣFRAC.
	coreP0 := make([]float64, ncn)
	for j := 0; j < ncn; j++ {
		nt := dc.NodeType(j)
		coreP0[j] = nt.Core.PStatePower(0) * float64(nt.NumCores)
	}

	// Constraint 3 (power, linearized CRAC as in Stage 1).
	lin := tm.LinearizeCRACPower(cracOut)
	baseConst := 0.0
	nodeCoef := make([]float64, ncn)
	for j := 0; j < ncn; j++ {
		nodeCoef[j] = 1
		baseConst += dc.NodeType(j).BasePower
	}
	for _, l := range lin {
		baseConst += l.Const
		for j, c := range l.Coef {
			nodeCoef[j] += c
			baseConst += c * dc.NodeType(j).BasePower
		}
	}
	var powerTerms []linprog.Term
	for j := 0; j < ncn; j++ {
		for i := 0; i < t; i++ {
			if id := varID[i][j]; id >= 0 {
				powerTerms = append(powerTerms, linprog.Term{Var: id, Coef: nodeCoef[j] * coreP0[j]})
			}
		}
	}
	p.AddRow(linprog.LE, dc.Pconst-baseConst, powerTerms...)

	// Constraint 4 (thermal redlines).
	base := tm.InletBase(cracOut)
	g := tm.PowerSensitivity()
	redline := dc.Redline()
	for th := 0; th < dc.NumThermal(); th++ {
		rhs := redline[th] - base[th]
		var terms []linprog.Term
		for j := 0; j < ncn; j++ {
			gj := g.At(th, j)
			rhs -= gj * dc.NodeType(j).BasePower
			if gj == 0 {
				continue
			}
			for i := 0; i < t; i++ {
				if id := varID[i][j]; id >= 0 {
					terms = append(terms, linprog.Term{Var: id, Coef: gj * coreP0[j]})
				}
			}
		}
		if rhs < 0 {
			return &BaselineResult{CracOut: append([]float64(nil), cracOut...)},
				fmt.Errorf("assign: redline %d violated by base power alone at outlets %v", th, cracOut)
		}
		p.AddRow(linprog.LE, rhs, terms...)
	}

	sol, err := p.Solve()
	if err != nil {
		return &BaselineResult{CracOut: append([]float64(nil), cracOut...)}, err
	}

	res := &BaselineResult{
		CracOut:      append([]float64(nil), cracOut...),
		Frac:         make([][]float64, t),
		RewardRateLP: sol.Objective,
		UsedCores:    make([]int, ncn),
		NodePower:    make([]float64, ncn),
	}
	for i := range res.Frac {
		res.Frac[i] = make([]float64, ncn)
		for j := 0; j < ncn; j++ {
			if id := varID[i][j]; id >= 0 {
				res.Frac[i][j] = sol.Value(id)
			}
		}
	}

	// Equation-22 rounding: scale each node's fractions down by a common
	// factor so |cores_j|·ΣFRAC is an integer.
	for j := 0; j < ncn; j++ {
		n := float64(dc.NodeType(j).NumCores)
		sum := 0.0
		for i := 0; i < t; i++ {
			sum += res.Frac[i][j]
		}
		used := sum * n
		floor := math.Floor(used + 1e-9)
		if used > floor {
			scale := floor / used
			for i := 0; i < t; i++ {
				res.Frac[i][j] *= scale
			}
		}
		res.UsedCores[j] = int(floor)
	}
	// Reward and power after rounding.
	for j := 0; j < ncn; j++ {
		nt := dc.NodeType(j)
		frac := 0.0
		for i := 0; i < t; i++ {
			f := res.Frac[i][j]
			frac += f
			res.RewardRate += dc.TaskTypes[i].Reward * dc.ECS[i][dc.Nodes[j].Type][0] * float64(nt.NumCores) * f
		}
		res.NodePower[j] = nt.BasePower + coreP0[j]*frac
	}
	total := 0.0
	for _, np := range res.NodePower {
		total += np
	}
	for _, cp := range tm.CRACPowers(cracOut, res.NodePower) {
		total += cp
	}
	res.TotalPower = total
	tin := tm.InletTemps(cracOut, res.NodePower)
	res.Feasible = total <= dc.Pconst+powerTolerance && tm.RedlineSlack(tin) >= -powerTolerance
	return res, nil
}

// Assignment converts a baseline result into the (P-states, TC) pair the
// second-step dynamic scheduler consumes: each node's first UsedCores
// cores run at P-state 0 (rest off), and the node's per-task execution
// rates ECS·|cores_j|·FRAC(i,j) are split evenly across its active cores.
func (r *BaselineResult) Assignment(dc *model.DataCenter) (pstates []int, tc [][]float64) {
	pstates = make([]int, dc.NumCores())
	tc = make([][]float64, dc.T())
	for i := range tc {
		tc[i] = make([]float64, dc.NumCores())
	}
	for j := range dc.Nodes {
		nt := dc.NodeType(j)
		lo, hi := dc.CoreRange(j)
		active := r.UsedCores[j]
		for k := lo; k < hi; k++ {
			if k-lo < active {
				pstates[k] = 0
			} else {
				pstates[k] = nt.OffState()
			}
		}
		if active == 0 {
			continue
		}
		for i := range tc {
			rate := dc.ECS[i][dc.Nodes[j].Type][0] * float64(nt.NumCores) * r.Frac[i][j]
			per := rate / float64(active)
			for k := lo; k < lo+active; k++ {
				tc[i][k] = per
			}
		}
	}
	return pstates, tc
}

// Baseline runs the Equation-21 technique with the same CRAC outlet
// temperature search as the three-stage assignment, using the LP optimum
// as the search criterion. BaselineFixed builds a fresh LP per call and
// only reads dc/tm, so one shared evaluator serves all search workers.
func Baseline(dc *model.DataCenter, tm *thermal.Model, opts Options) (*BaselineResult, error) {
	eval := func(cracOut []float64) (float64, bool) {
		res, err := BaselineFixed(dc, tm, cracOut)
		if err != nil || !res.Feasible {
			return 0, false
		}
		return res.RewardRateLP, true
	}
	best, err := runSearch(context.Background(), dc.NCRAC(), opts, tempsearch.Shared(eval))
	if err != nil {
		return nil, fmt.Errorf("assign: baseline temperature search: %w", err)
	}
	res, err := BaselineFixed(dc, tm, best.Out)
	if err != nil {
		return nil, err
	}
	res.SearchEvals = best.Evals
	return res, nil
}
