package assign

import (
	"fmt"

	"thermaldc/internal/model"
	"thermaldc/internal/thermal"
)

// Violation is one broken constraint found by Verify.
type Violation struct {
	// Constraint names the paper constraint ("utilization", "deadline",
	// "arrival", "power", "redline", "pstate-range").
	Constraint string
	// Detail locates the violation.
	Detail string
	// Amount quantifies it (units depend on the constraint).
	Amount float64
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (by %g)", v.Constraint, v.Detail, v.Amount)
}

// Verify independently re-checks a complete first-step assignment against
// every constraint of the paper's Equation-7 problem: per-core utilization
// (constraint 1), deadlines (2), arrival rates (3), total power (4, exact
// CRAC power) and inlet redlines (5), plus P-state index validity. It
// shares no code with the LP construction, so it guards against formula
// drift between the optimizer and the model. An empty slice means the
// assignment is valid within tol.
func Verify(dc *model.DataCenter, tm *thermal.Model, res *ThreeStageResult, tol float64) []Violation {
	var out []Violation
	ncores := dc.NumCores()
	if len(res.PStates) != ncores {
		return []Violation{{Constraint: "pstate-range", Detail: "wrong P-state slice length", Amount: float64(len(res.PStates) - ncores)}}
	}

	// P-state validity and per-core utilization (constraint 1) and
	// deadline screening (constraint 2).
	validPStates := true
	for j := range dc.Nodes {
		nt := dc.NodeType(j)
		typ := dc.Nodes[j].Type
		lo, hi := dc.CoreRange(j)
		for k := lo; k < hi; k++ {
			ps := res.PStates[k]
			if ps < 0 || ps > nt.OffState() {
				out = append(out, Violation{"pstate-range", fmt.Sprintf("core %d has P-state %d", k, ps), float64(ps)})
				validPStates = false
				continue
			}
			util := 0.0
			for i := range dc.TaskTypes {
				tc := res.Stage3.TC[i][k]
				if tc <= 0 {
					continue
				}
				ecs := dc.ECS[i][typ][ps]
				if ecs <= ecsEpsilon {
					out = append(out, Violation{"deadline", fmt.Sprintf("task %d on core %d with zero ECS", i, k), tc})
					continue
				}
				if 1/ecs > dc.TaskTypes[i].RelDeadline+tol {
					out = append(out, Violation{"deadline",
						fmt.Sprintf("task %d on core %d: exec time %g > m_i %g", i, k, 1/ecs, dc.TaskTypes[i].RelDeadline),
						1/ecs - dc.TaskTypes[i].RelDeadline})
				}
				util += tc / ecs
			}
			if util > 1+tol {
				out = append(out, Violation{"utilization", fmt.Sprintf("core %d", k), util - 1})
			}
		}
	}

	// Constraint 3: total desired rate per task ≤ arrival rate.
	for i, tt := range dc.TaskTypes {
		sum := 0.0
		for k := 0; k < ncores; k++ {
			sum += res.Stage3.TC[i][k]
		}
		if sum > tt.ArrivalRate+tol*(1+tt.ArrivalRate) {
			out = append(out, Violation{"arrival", fmt.Sprintf("task %d: rate %g > λ %g", i, sum, tt.ArrivalRate), sum - tt.ArrivalRate})
		}
	}

	// Constraints 4 and 5 with the exact power model (skipped when the
	// P-state indices themselves are invalid).
	if !validPStates {
		return out
	}
	pcn := NodePowersFromPStates(dc, res.PStates)
	total := tm.TotalPower(res.Stage1.CracOut, pcn)
	if total > dc.Pconst+tol*(1+dc.Pconst) {
		out = append(out, Violation{"power", fmt.Sprintf("total %g kW > Pconst %g kW", total, dc.Pconst), total - dc.Pconst})
	}
	tin := tm.InletTemps(res.Stage1.CracOut, pcn)
	redline := dc.Redline()
	for t := range tin {
		if tin[t] > redline[t]+tol {
			out = append(out, Violation{"redline", fmt.Sprintf("thermal unit %d: %g °C > %g °C", t, tin[t], redline[t]), tin[t] - redline[t]})
		}
	}
	return out
}
