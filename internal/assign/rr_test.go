package assign

import (
	"math"
	"testing"

	"thermaldc/internal/model"
	"thermaldc/internal/power"
)

// figureExampleDC reconstructs the Section V.B.2 worked example: a core
// type with P-state powers 0.15, 0.1, 0.05 W (+ off at 0 W) and ECS
// 1.2, 0.9, 0.5 (+ 0) for a single task type with reward 1. Frequencies
// 3000/2000/1000 MHz at unit voltage with zero static share yield exactly
// those powers.
func figureExampleDC(relDeadline float64) *model.DataCenter {
	nt := model.NodeType{
		Name:      "example",
		BasePower: 0.1,
		NumCores:  2,
		Core: power.CoreModel{
			FreqMHz:     []float64{3000, 2000, 1000},
			Voltage:     []float64{1, 1, 1},
			P0Power:     0.15,
			StaticShare: 0,
		},
		AirFlow: 0.07,
	}
	dc := &model.DataCenter{
		NodeTypes:   []model.NodeType{nt},
		Nodes:       []model.Node{{Type: 0}},
		CRACs:       []model.CRAC{{Flow: 0.07}},
		TaskTypes:   []model.TaskType{{Name: "i", Reward: 1, RelDeadline: relDeadline, ArrivalRate: 10}},
		ECS:         model.ECS{{{1.2, 0.9, 0.5, 0}}},
		Alpha:       [][]float64{{0, 1}, {1, 0}},
		RedlineNode: 25,
		RedlineCRAC: 40,
		Pconst:      100,
	}
	return dc
}

func TestFigureExamplePowers(t *testing.T) {
	dc := figureExampleDC(100)
	got := dc.NodeTypes[0].CorePowers()
	want := []float64{0.15, 0.1, 0.05, 0}
	for k := range want {
		if math.Abs(got[k]-want[k]) > 1e-12 {
			t.Fatalf("CorePowers = %v, want %v", got, want)
		}
	}
}

func TestRRFigure3(t *testing.T) {
	// No deadline pressure: RR goes through (0,0), (0.05,0.5), (0.1,0.9),
	// (0.15,1.2) exactly as in Figure 3.
	dc := figureExampleDC(100)
	rr := RR(dc, 0, 0)
	wantX := []float64{0, 0.05, 0.1, 0.15}
	wantY := []float64{0, 0.5, 0.9, 1.2}
	if rr.Len() != 4 {
		t.Fatalf("RR has %d points: %v", rr.Len(), rr)
	}
	for i := range wantX {
		if math.Abs(rr.X[i]-wantX[i]) > 1e-12 || math.Abs(rr.Y[i]-wantY[i]) > 1e-12 {
			t.Fatalf("RR = %v, want X=%v Y=%v", rr, wantX, wantY)
		}
	}
}

func TestRRFigure4DeadlineZeroesPState(t *testing.T) {
	// m_i = 1.5 < 1/0.5 = 2: P-state 2 cannot meet the deadline, its
	// reward rate is 0 (Figure 4).
	dc := figureExampleDC(1.5)
	rr := RR(dc, 0, 0)
	if got := rr.Eval(0.05); math.Abs(got) > 1e-12 {
		t.Errorf("RR(0.05) = %g, want 0", got)
	}
	if got := rr.Eval(0.1); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("RR(0.1) = %g, want 0.9", got)
	}
	if rr.IsConcave(1e-9) {
		t.Error("Figure-4 RR should be non-concave")
	}
}

func TestARRFigure5Envelope(t *testing.T) {
	// The ARR of the single task type is the concave envelope that elides
	// the "bad" P-state 2: points (0,0), (0.1,0.9), (0.15,1.2).
	dc := figureExampleDC(1.5)
	arr, err := ARR(dc, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Len() != 3 {
		t.Fatalf("ARR = %v, want 3 points", arr)
	}
	if math.Abs(arr.Eval(0.05)-0.45) > 1e-12 {
		t.Errorf("ARR(0.05) = %g, want 0.45 (paper's 2-core example)", arr.Eval(0.05))
	}
	if !arr.IsConcave(1e-12) {
		t.Error("ARR must be concave")
	}
}

func TestRRUnableCoreType(t *testing.T) {
	// Zero ECS everywhere (software not installed): RR ≡ 0.
	dc := figureExampleDC(100)
	dc.ECS = model.ECS{{{0, 0, 0, 0}}}
	rr := RR(dc, 0, 0)
	for _, x := range []float64{0, 0.05, 0.1, 0.15} {
		if rr.Eval(x) != 0 {
			t.Fatalf("RR(%g) = %g, want 0", x, rr.Eval(x))
		}
	}
}

func TestPsiCount(t *testing.T) {
	cases := []struct {
		t    int
		psi  float64
		want int
	}{
		{8, 25, 2},
		{8, 50, 4},
		{8, 100, 8},
		{8, 1, 1},   // never below 1
		{8, 200, 8}, // never above T
		{3, 50, 2},  // rounds 1.5 up
	}
	for _, c := range cases {
		if got := PsiCount(c.t, c.psi); got != c.want {
			t.Errorf("PsiCount(%d, %g) = %d, want %d", c.t, c.psi, got, c.want)
		}
	}
}

func TestBestTasksRanking(t *testing.T) {
	// Two task types: one with far better reward-rate/power ratio.
	dc := figureExampleDC(100)
	dc.TaskTypes = []model.TaskType{
		{Name: "poor", Reward: 0.1, RelDeadline: 100, ArrivalRate: 10},
		{Name: "rich", Reward: 10, RelDeadline: 100, ArrivalRate: 10},
	}
	dc.ECS = model.ECS{
		{{1.2, 0.9, 0.5, 0}},
		{{1.2, 0.9, 0.5, 0}},
	}
	best := BestTasks(dc, 0, 50)
	if len(best) != 1 || best[0] != 1 {
		t.Errorf("BestTasks = %v, want [1]", best)
	}
	both := BestTasks(dc, 0, 100)
	if len(both) != 2 || both[0] != 1 || both[1] != 0 {
		t.Errorf("BestTasks(100%%) = %v, want [1 0]", both)
	}
}

func TestARRAveragesSelectedTasks(t *testing.T) {
	// With ψ=100 and two identical task types, ARR equals either RR's
	// envelope.
	dc := figureExampleDC(100)
	dc.TaskTypes = []model.TaskType{
		{Name: "a", Reward: 1, RelDeadline: 100, ArrivalRate: 10},
		{Name: "b", Reward: 1, RelDeadline: 100, ArrivalRate: 10},
	}
	dc.ECS = model.ECS{
		{{1.2, 0.9, 0.5, 0}},
		{{1.2, 0.9, 0.5, 0}},
	}
	arr, err := ARR(dc, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.05, 0.1, 0.15} {
		want := RR(dc, 0, 0).Eval(x)
		if math.Abs(arr.Eval(x)-want) > 1e-12 {
			t.Fatalf("ARR(%g) = %g, want %g", x, arr.Eval(x), want)
		}
	}
}
