package assign

import (
	"fmt"
	"math"
	"sort"

	"thermaldc/internal/model"
	"thermaldc/internal/pwl"
)

// DisaggregateNodePower splits a node's total core-power budget into
// per-core targets along the concave ARR envelope. The LP's node-level
// optimum lies on one envelope segment [b_l, b_{l+1}]; the same aggregate
// reward is realized per-core by putting m cores at b_{l+1}, one core at
// the residual power, and the rest at b_l — mirroring the paper's 2-core
// example where (P-state 1, P-state 3) beats an equal split once P-states
// are integers.
//
// A non-positive nCores or a non-finite total is a model invariant
// violation and returns an error (historically a panic; the controller's
// solve pipeline must degrade, not die).
func DisaggregateNodePower(envelope *pwl.Func, nCores int, total float64) ([]float64, error) {
	if nCores <= 0 {
		return nil, fmt.Errorf("assign: nCores must be positive, got %d", nCores)
	}
	if math.IsNaN(total) || math.IsInf(total, 0) {
		return nil, fmt.Errorf("assign: node core-power budget is non-finite: %g", total)
	}
	out := make([]float64, nCores)
	if total <= 0 {
		return out, nil
	}
	perCore := total / float64(nCores)
	xs := envelope.X
	// Clamp to the envelope domain.
	if perCore >= xs[len(xs)-1] {
		for i := range out {
			out[i] = xs[len(xs)-1]
		}
		return out, nil
	}
	// Locate the segment [b_l, b_{l+1}] containing perCore.
	l := sort.SearchFloat64s(xs, perCore)
	if l == 0 {
		l = 1
	}
	bl, bh := xs[l-1], xs[l]
	// m cores at bh, rest at bl, one residual core.
	theta := (perCore - bl) / (bh - bl)
	m := int(theta * float64(nCores))
	if m > nCores-1 {
		m = nCores - 1
	}
	for i := 0; i < m; i++ {
		out[i] = bh
	}
	for i := m + 1; i < nCores; i++ {
		out[i] = bl
	}
	residual := total - float64(m)*bh - float64(nCores-1-m)*bl
	if residual < bl {
		residual = bl
	}
	if residual > bh {
		residual = bh
	}
	out[m] = residual
	return out, nil
}

// Stage2Node converts per-core power targets into integer P-states for one
// node, following the paper's Stage-2 procedure:
//
//  1. Each core gets the highest (slowest) P-state whose power is ≥ its
//     target — i.e. the cheapest P-state that still delivers the assigned
//     power.
//  2. While the node's power (Equation 1) exceeds the Stage-1 node budget,
//     increment the P-state of the core currently in the smallest
//     (fastest) P-state.
//
// The returned slice maps each core to a P-state index (OffState = off).
// A target count that does not match the node's core count is a model
// invariant violation and returns an error rather than panicking.
func Stage2Node(nt *model.NodeType, targets []float64, nodeBudget float64) ([]int, error) {
	if len(targets) != nt.NumCores {
		return nil, fmt.Errorf("assign: node has %d cores, got %d targets", nt.NumCores, len(targets))
	}
	powers := nt.CorePowers() // decreasing, last = 0 (off)
	off := nt.OffState()
	ps := make([]int, nt.NumCores)
	for c, target := range targets {
		// Highest P-state (largest index, lowest power) with power ≥ target.
		k := off
		for cand := off; cand >= 0; cand-- {
			if powers[cand] >= target-1e-12 {
				k = cand
				break
			}
		}
		ps[c] = k
	}
	// Step 2: reduce power until within budget.
	nodePower := func() float64 {
		total := nt.BasePower
		for _, k := range ps {
			total += powers[k]
		}
		return total
	}
	for nodePower() > nodeBudget+1e-9 {
		// Find the core with the smallest P-state (highest power).
		best := -1
		for c, k := range ps {
			if k >= off {
				continue
			}
			if best < 0 || k < ps[best] {
				best = c
			}
		}
		if best < 0 {
			break // everything off; base power alone exceeds the budget
		}
		ps[best]++
	}
	return ps, nil
}

// Stage2 converts the Stage-1 node power assignment into per-core integer
// P-states for the whole data center, returning a flat slice indexed by
// global core index.
func Stage2(dc *model.DataCenter, arrs []*pwl.Func, s1 *Stage1Result) ([]int, error) {
	out := make([]int, dc.NumCores())
	for j := range dc.Nodes {
		nt := dc.NodeType(j)
		env := arrs[dc.Nodes[j].Type]
		targets, err := DisaggregateNodePower(env, nt.NumCores, s1.NodeCorePower[j])
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", j, err)
		}
		ps, err := Stage2Node(nt, targets, s1.NodePower[j])
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", j, err)
		}
		lo, _ := dc.CoreRange(j)
		copy(out[lo:], ps)
	}
	return out, nil
}

// NodePowersFromPStates computes each node's power (Equation 1) for a flat
// per-core P-state assignment.
func NodePowersFromPStates(dc *model.DataCenter, pstates []int) []float64 {
	out := make([]float64, dc.NCN())
	for j := range dc.Nodes {
		nt := dc.NodeType(j)
		powers := nt.CorePowers()
		lo, hi := dc.CoreRange(j)
		total := nt.BasePower
		for k := lo; k < hi; k++ {
			total += powers[pstates[k]]
		}
		out[j] = total
	}
	return out
}
