// Package assign implements the paper's assignment machinery: the
// reward-rate functions RR_{i,j} and aggregate reward-rate functions ARR_j
// of Section V.B.2 (Figures 3-5), the three-stage first-step assignment
// (Stage 1 relaxed power LP, Stage 2 P-state rounding, Stage 3 desired
// execution-rate LP), the Equation-21 baseline adapted from Parolini et
// al. [26], and the Equation-17/18 power bounds.
package assign

import (
	"fmt"
	"math"
	"sort"

	"thermaldc/internal/model"
	"thermaldc/internal/pwl"
)

// ecsEpsilon is the "small enough positive number" the paper substitutes
// for zero ECS values so 1/ECS stays defined; rates below it are treated
// as a core type being unable to run a task type.
const ecsEpsilon = 1e-9

// deadlineFeasible reports whether a single task of type i can meet its
// relative deadline m_i on a core of type j at P-state k even when started
// immediately (the paper's constraint 2: 1/ECS ≤ m_i).
func deadlineFeasible(dc *model.DataCenter, task, nodeType, pstate int) bool {
	ecs := dc.ECS[task][nodeType][pstate]
	if ecs <= ecsEpsilon {
		return false
	}
	return 1/ecs <= dc.TaskTypes[task].RelDeadline
}

// RR builds the reward-rate function RR_{i,j}: the piecewise-linear
// function of core power through the points (π_{j,k}, r_i·ECS(i,j,k)) for
// every P-state including the turned-off state at (0, 0), as in Figure 3.
// P-states that cannot meet the task's deadline contribute a zero reward
// rate (Figure 4).
func RR(dc *model.DataCenter, task, nodeType int) *pwl.Func {
	nt := &dc.NodeTypes[nodeType]
	powers := nt.CorePowers()
	r := dc.TaskTypes[task].Reward
	xs := make([]float64, len(powers))
	ys := make([]float64, len(powers))
	for k := range powers {
		xs[k] = powers[k]
		if deadlineFeasible(dc, task, nodeType, k) {
			ys[k] = r * dc.ECS[task][nodeType][k]
		}
	}
	return pwl.MustNew(xs, ys)
}

// taskQuality is the paper's ranking criterion for the "best ψ%" task
// types: the average over real (non-off) P-states of the ratio of reward
// rate to power consumption.
func taskQuality(dc *model.DataCenter, rr *pwl.Func, nodeType int) float64 {
	nt := &dc.NodeTypes[nodeType]
	powers := nt.CorePowers()
	sum := 0.0
	n := 0
	for k := 0; k < nt.NumPStates(); k++ {
		if powers[k] <= 0 {
			continue
		}
		sum += rr.Eval(powers[k]) / powers[k]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PsiCount returns how many task types the "best ψ%" rule selects out of
// t, never fewer than one.
func PsiCount(t int, psiPercent float64) int {
	n := int(math.Round(float64(t) * psiPercent / 100))
	if n < 1 {
		n = 1
	}
	if n > t {
		n = t
	}
	return n
}

// ARR builds the aggregate reward-rate function ARR_j for one core of node
// type j: the mean of the RR functions of the best ψ% task types (by
// average reward-rate/power ratio, ties broken by task index), with its
// upper concave envelope taken to elide "bad" P-states (Figure 5). The
// returned function is concave and anchored at (0, 0).
func ARR(dc *model.DataCenter, nodeType int, psiPercent float64) (*pwl.Func, error) {
	t := dc.T()
	if t == 0 {
		return nil, fmt.Errorf("assign: no task types")
	}
	type ranked struct {
		task    int
		quality float64
		rr      *pwl.Func
	}
	rs := make([]ranked, t)
	for i := 0; i < t; i++ {
		rr := RR(dc, i, nodeType)
		rs[i] = ranked{task: i, quality: taskQuality(dc, rr, nodeType), rr: rr}
	}
	sort.SliceStable(rs, func(a, b int) bool { return rs[a].quality > rs[b].quality })
	n := PsiCount(t, psiPercent)
	funcs := make([]*pwl.Func, n)
	for i := 0; i < n; i++ {
		funcs[i] = rs[i].rr
	}
	mean, err := pwl.Mean(funcs)
	if err != nil {
		return nil, fmt.Errorf("assign: averaging RR functions: %w", err)
	}
	return mean.ConcaveEnvelope(), nil
}

// BestTasks returns the task indices the ψ-rule selects for a node type,
// in quality order. Exposed for experiment output.
func BestTasks(dc *model.DataCenter, nodeType int, psiPercent float64) []int {
	t := dc.T()
	type ranked struct {
		task    int
		quality float64
	}
	rs := make([]ranked, t)
	for i := 0; i < t; i++ {
		rs[i] = ranked{i, taskQuality(dc, RR(dc, i, nodeType), nodeType)}
	}
	sort.SliceStable(rs, func(a, b int) bool { return rs[a].quality > rs[b].quality })
	n := PsiCount(t, psiPercent)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = rs[i].task
	}
	return out
}
