package assign_test

import (
	"testing"

	"thermaldc/internal/assign"
	"thermaldc/internal/model"
	"thermaldc/internal/power"
	"thermaldc/internal/tempsearch"
	"thermaldc/internal/thermal"
)

// tinyInstance builds a 1-CRAC, 2-node (1 core each) data center small
// enough to enumerate every P-state assignment exactly.
func tinyInstance(t *testing.T) (*model.DataCenter, *thermal.Model) {
	t.Helper()
	nt := model.NodeType{
		Name:      "tiny",
		BasePower: 0.2,
		NumCores:  1,
		Core: power.CoreModel{
			FreqMHz:     []float64{3000, 2000, 1000},
			Voltage:     []float64{1, 1, 1},
			P0Power:     0.15,
			StaticShare: 0.3,
		},
		AirFlow: 0.05,
	}
	dc := &model.DataCenter{
		NodeTypes: []model.NodeType{nt},
		Nodes: []model.Node{
			{Type: 0, Label: model.LabelA},
			{Type: 0, Label: model.LabelE},
		},
		CRACs:       []model.CRAC{{Flow: 0.1}},
		RedlineNode: 25,
		RedlineCRAC: 40,
		TaskTypes: []model.TaskType{
			{Name: "hard", Reward: 4, RelDeadline: 3, ArrivalRate: 0.6},
			{Name: "easy", Reward: 1, RelDeadline: 1, ArrivalRate: 2.4},
		},
		ECS: model.ECS{
			{{0.5, 0.35, 0.18, 0}},
			{{1.6, 1.1, 0.55, 0}},
		},
		// Simple mixing: both nodes exhaust to the CRAC, CRAC feeds both.
		Alpha: [][]float64{
			{0, 0.5, 0.5},
			{0.8, 0.1, 0.1},
			{0.8, 0.1, 0.1},
		},
	}
	tm, err := thermal.New(dc)
	if err != nil {
		t.Fatal(err)
	}
	// A power cap that forces a nontrivial choice: both cores at P0 must
	// not fit.
	search := tempsearch.Config{Lo: 5, Hi: 25, CoarseStep: 5, FineStep: 1}
	pmin, pmax, err := assign.PowerBounds(dc, tm, search)
	if err != nil {
		t.Fatal(err)
	}
	dc.Pconst = pmin + 0.45*(pmax-pmin)
	if err := dc.Validate(); err != nil {
		t.Fatal(err)
	}
	return dc, tm
}

// bruteForceOptimum enumerates every (P-state, P-state, outlet) triple on
// the 1 °C lattice, keeps the exactly feasible ones, and solves the
// Stage-3 LP for each: the true optimum of the paper's decision space at
// that temperature granularity.
func bruteForceOptimum(t *testing.T, dc *model.DataCenter, tm *thermal.Model) float64 {
	t.Helper()
	best := 0.0
	off := dc.NodeTypes[0].OffState()
	for p0 := 0; p0 <= off; p0++ {
		for p1 := 0; p1 <= off; p1++ {
			pstates := []int{p0, p1}
			pcn := assign.NodePowersFromPStates(dc, pstates)
			feasibleSomewhere := false
			for out := 5.0; out <= 25; out++ {
				cracOut := []float64{out}
				if tm.RedlineSlack(tm.InletTemps(cracOut, pcn)) < -1e-9 {
					continue
				}
				if tm.TotalPower(cracOut, pcn) > dc.Pconst+1e-9 {
					continue
				}
				feasibleSomewhere = true
				break
			}
			if !feasibleSomewhere {
				continue
			}
			s3, err := assign.Stage3(dc, pstates)
			if err != nil {
				t.Fatal(err)
			}
			if s3.RewardRate > best {
				best = s3.RewardRate
			}
		}
	}
	return best
}

// TestThreeStageNearBruteForceOptimum validates the whole heuristic
// pipeline against the enumerated ground truth on a tiny instance: the
// three-stage result can never exceed the brute-force optimum and should
// land close to it.
func TestThreeStageNearBruteForceOptimum(t *testing.T) {
	dc, tm := tinyInstance(t)
	truth := bruteForceOptimum(t, dc, tm)
	if truth <= 0 {
		t.Fatal("brute force found no feasible assignment — instance misconfigured")
	}
	opts := assign.DefaultOptions()
	opts.Search = tempsearch.Config{Lo: 5, Hi: 25, CoarseStep: 5, FineStep: 1}
	bestHeuristic := 0.0
	for _, psi := range []float64{50, 100} {
		opts.Psi = psi
		res, err := assign.ThreeStage(dc, tm, opts)
		if err != nil {
			t.Fatal(err)
		}
		r := res.RewardRate()
		if r > truth+1e-6 {
			t.Fatalf("ψ=%g: heuristic %g exceeds the exhaustive optimum %g — impossible", psi, r, truth)
		}
		if r > bestHeuristic {
			bestHeuristic = r
		}
	}
	t.Logf("brute force %g, three-stage best %g (%.1f%%)", truth, bestHeuristic, 100*bestHeuristic/truth)
	if bestHeuristic < 0.8*truth {
		t.Errorf("three-stage %g below 80%% of the optimum %g", bestHeuristic, truth)
	}
}
