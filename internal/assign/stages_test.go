package assign

import (
	"math"
	"testing"

	"thermaldc/internal/pwl"
)

func TestDisaggregateNodePowerSumsAndBounds(t *testing.T) {
	env := pwl.MustNew([]float64{0, 0.05, 0.1, 0.15}, []float64{0, 0.5, 0.9, 1.2})
	for _, total := range []float64{0, 0.04, 0.1, 0.2, 0.33, 0.45, 0.6} {
		targets, err := DisaggregateNodePower(env, 4, total)
		if err != nil {
			t.Fatal(err)
		}
		if len(targets) != 4 {
			t.Fatalf("got %d targets", len(targets))
		}
		sum := 0.0
		for _, p := range targets {
			if p < -1e-12 || p > 0.15+1e-12 {
				t.Fatalf("target %g outside [0, 0.15]", p)
			}
			sum += p
		}
		want := math.Min(total, 0.6)
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("total=%g: targets sum to %g, want %g", total, sum, want)
		}
	}
}

func TestDisaggregatePreservesEnvelopeValue(t *testing.T) {
	// The per-core mix must realize the same aggregate reward as the
	// node-level envelope (the aggregation-exactness argument).
	env := pwl.MustNew([]float64{0, 0.1, 0.15}, []float64{0, 0.9, 1.2}) // Figure-5 envelope
	const n = 8
	for _, total := range []float64{0.2, 0.5, 0.8, 1.0, 1.2} {
		targets, err := DisaggregateNodePower(env, n, total)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range targets {
			sum += env.Eval(p)
		}
		want := float64(n) * env.Eval(total/n)
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("total=%g: per-core reward %g, envelope %g", total, sum, want)
		}
	}
}

func TestDisaggregatePaperTwoCoreExample(t *testing.T) {
	// The paper's example: 2 cores, 0.1 W total on the Figure-5 envelope
	// → one core at 0.1 W (P-state 1) and one at 0 W (off), reward 0.45·2.
	env := pwl.MustNew([]float64{0, 0.1, 0.15}, []float64{0, 0.9, 1.2})
	targets, err := DisaggregateNodePower(env, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	hi, lo := math.Max(targets[0], targets[1]), math.Min(targets[0], targets[1])
	if math.Abs(hi-0.1) > 1e-9 || math.Abs(lo-0) > 1e-9 {
		t.Fatalf("targets = %v, want {0.1, 0}", targets)
	}
}

func TestDisaggregateBadInputsReturnError(t *testing.T) {
	env := pwl.MustNew([]float64{0, 1}, []float64{0, 1})
	if _, err := DisaggregateNodePower(env, 0, 0.5); err == nil {
		t.Fatal("expected error for zero cores")
	}
	if _, err := DisaggregateNodePower(env, -3, 0.5); err == nil {
		t.Fatal("expected error for negative cores")
	}
	if _, err := DisaggregateNodePower(env, 2, math.NaN()); err == nil {
		t.Fatal("expected error for NaN total")
	}
	if _, err := DisaggregateNodePower(env, 2, math.Inf(1)); err == nil {
		t.Fatal("expected error for +Inf total")
	}
}

func TestStage2NodeRoundsUpThenTrims(t *testing.T) {
	dc := figureExampleDC(100)
	nt := &dc.NodeTypes[0] // 2 cores, powers 0.15/0.1/0.05/off, base 0.1
	// Targets exactly at P-state powers map to those P-states when the
	// budget allows.
	ps, err := Stage2Node(nt, []float64{0.1, 0}, 0.1+0.1)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] != 1 || ps[1] != 3 {
		t.Errorf("P-states = %v, want [1 3]", ps)
	}
	// A target between P-states rounds up (more power), then step 2 trims
	// back within the budget: target 0.07 rounds to P-state 1 (0.1 W), but
	// budget base+0.07 forces it down to P-state 2 (0.05 W).
	ps, err = Stage2Node(nt, []float64{0.07, 0}, 0.1+0.07)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0] != 2 || ps[1] != 3 {
		t.Errorf("P-states = %v, want [2 3]", ps)
	}
}

func TestStage2NodeBudgetAlwaysRespected(t *testing.T) {
	dc := figureExampleDC(100)
	nt := &dc.NodeTypes[0]
	powers := nt.CorePowers()
	for _, budget := range []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.4} {
		for _, targets := range [][]float64{
			{0.15, 0.15}, {0.12, 0.03}, {0.05, 0.05}, {0, 0},
		} {
			ps, err := Stage2Node(nt, targets, budget)
			if err != nil {
				t.Fatal(err)
			}
			total := nt.BasePower
			for _, k := range ps {
				total += powers[k]
			}
			if total > budget+1e-9 && total > nt.BasePower+1e-12 {
				t.Fatalf("budget %g, targets %v: node power %g exceeds budget", budget, targets, total)
			}
		}
	}
}

func TestStage2NodeAllOffWhenBudgetIsBase(t *testing.T) {
	dc := figureExampleDC(100)
	nt := &dc.NodeTypes[0]
	ps, err := Stage2Node(nt, []float64{0.15, 0.15}, nt.BasePower)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ps {
		if k != nt.OffState() {
			t.Fatalf("P-states = %v, want all off", ps)
		}
	}
}

func TestStage2NodeWrongTargetsReturnError(t *testing.T) {
	dc := figureExampleDC(100)
	if _, err := Stage2Node(&dc.NodeTypes[0], []float64{0.1}, 1); err == nil {
		t.Fatal("expected error for mismatched target count")
	}
}

func TestNodePowersFromPStates(t *testing.T) {
	dc := figureExampleDC(100)
	got := NodePowersFromPStates(dc, []int{0, 2})
	want := 0.1 + 0.15 + 0.05
	if math.Abs(got[0]-want) > 1e-12 {
		t.Errorf("node power = %g, want %g", got[0], want)
	}
}

func TestStage3SingleCoreKnownOptimum(t *testing.T) {
	// One node, 2 cores at P-state 0 (ECS 1.2), one task type with reward
	// 1 and λ = 10: cores saturate at rate 1.2 each → reward rate 2.4.
	dc := figureExampleDC(100)
	res, err := Stage3(dc, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RewardRate-2.4) > 1e-9 {
		t.Errorf("reward rate = %g, want 2.4", res.RewardRate)
	}
	for k := 0; k < 2; k++ {
		if math.Abs(res.TC[0][k]-1.2) > 1e-9 {
			t.Errorf("TC[0][%d] = %g, want 1.2", k, res.TC[0][k])
		}
		if math.Abs(res.CoreUtilization[k]-1) > 1e-9 {
			t.Errorf("utilization[%d] = %g, want 1", k, res.CoreUtilization[k])
		}
	}
}

func TestStage3ArrivalRateBinds(t *testing.T) {
	// λ = 1 < capacity 2.4: reward rate capped at 1·r = 1.
	dc := figureExampleDC(100)
	dc.TaskTypes[0].ArrivalRate = 1
	res, err := Stage3(dc, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RewardRate-1) > 1e-9 {
		t.Errorf("reward rate = %g, want 1", res.RewardRate)
	}
}

func TestStage3OffCoresProduceNothing(t *testing.T) {
	dc := figureExampleDC(100)
	res, err := Stage3(dc, []int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.RewardRate != 0 {
		t.Errorf("reward rate = %g, want 0", res.RewardRate)
	}
}

func TestStage3DeadlineInfeasiblePStateExcluded(t *testing.T) {
	// m = 1.5: P-state 2 (ECS 0.5 → exec time 2) must get TC = 0.
	dc := figureExampleDC(1.5)
	res, err := Stage3(dc, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.RewardRate != 0 {
		t.Errorf("reward rate = %g, want 0 (deadline-infeasible P-state)", res.RewardRate)
	}
	// P-state 1 (exec time 1/0.9 ≈ 1.11 < 1.5) is fine.
	res, err = Stage3(dc, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RewardRate-1.8) > 1e-9 {
		t.Errorf("reward rate = %g, want 1.8", res.RewardRate)
	}
}

func TestStage3MixedPStatesGrouping(t *testing.T) {
	// Cores at different P-states end up in different groups with the
	// right capacities: one at P0 (1.2) + one at P1 (0.9) → 2.1 total.
	dc := figureExampleDC(100)
	res, err := Stage3(dc, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RewardRate-2.1) > 1e-9 {
		t.Errorf("reward rate = %g, want 2.1", res.RewardRate)
	}
	if math.Abs(res.TC[0][0]-1.2) > 1e-9 || math.Abs(res.TC[0][1]-0.9) > 1e-9 {
		t.Errorf("TC = %v", res.TC[0])
	}
}

func TestStage3RewardMatchesTC(t *testing.T) {
	dc := figureExampleDC(100)
	dc.TaskTypes[0].ArrivalRate = 1.7
	res, err := Stage3(dc, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := range res.TC {
		for k := range res.TC[i] {
			sum += dc.TaskTypes[i].Reward * res.TC[i][k]
		}
	}
	if math.Abs(sum-res.RewardRate) > 1e-9 {
		t.Errorf("recomputed reward %g != reported %g", sum, res.RewardRate)
	}
}

func TestStage3WrongPStateCount(t *testing.T) {
	dc := figureExampleDC(100)
	if _, err := Stage3(dc, []int{0}); err == nil {
		t.Fatal("expected error for wrong P-state slice length")
	}
}

func TestStrategyString(t *testing.T) {
	if CoarseToFine.String() != "coarse-to-fine" || FullGrid.String() != "full-grid" ||
		CoordDescent.String() != "coordinate-descent" {
		t.Error("strategy strings wrong")
	}
}
