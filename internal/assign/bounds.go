package assign

import (
	"fmt"

	"thermaldc/internal/model"
	"thermaldc/internal/tempsearch"
	"thermaldc/internal/thermal"
)

// PowerBounds solves the paper's Equation-17 problems: the minimum total
// power (all cores off) and maximum total power (all cores at P-state 0)
// over the CRAC outlet temperatures, subject to the redline constraints.
// With node powers fixed at either extreme, total power is a closed-form
// function of the outlets, so the NLP reduces to the discretized search
// (the paper itself treats its NLP solutions as upper bounds on the true
// extrema for the same reason).
func PowerBounds(dc *model.DataCenter, tm *thermal.Model, search tempsearch.Config) (pmin, pmax float64, err error) {
	minPCN := make([]float64, dc.NCN())
	maxPCN := make([]float64, dc.NCN())
	for j := range minPCN {
		nt := dc.NodeType(j)
		minPCN[j] = nt.MinPower()
		maxPCN[j] = nt.MaxPower()
	}
	// The evaluators only read tm and their pcn vector, so one shared
	// evaluator serves all search workers.
	evalFor := func(pcn []float64) tempsearch.Factory {
		return tempsearch.Shared(func(cracOut []float64) (float64, bool) {
			tin := tm.InletTemps(cracOut, pcn)
			if tm.RedlineSlack(tin) < -powerTolerance {
				return 0, false
			}
			// Minimizing power = maximizing its negation.
			return -tm.TotalPower(cracOut, pcn), true
		})
	}
	minRes, err := tempsearch.CoarseToFine(dc.NCRAC(), search, evalFor(minPCN))
	if err != nil {
		return 0, 0, fmt.Errorf("assign: Pmin search: %w", err)
	}
	maxRes, err := tempsearch.CoarseToFine(dc.NCRAC(), search, evalFor(maxPCN))
	if err != nil {
		return 0, 0, fmt.Errorf("assign: Pmax search (the fully loaded data center cannot be cooled within the redlines): %w", err)
	}
	return -minRes.Value, -maxRes.Value, nil
}

// SetPconst computes Pmin/Pmax and stores the paper's Equation-18 power
// constraint Pconst = (Pmin + Pmax)/2 in dc. It returns the bounds.
func SetPconst(dc *model.DataCenter, tm *thermal.Model, search tempsearch.Config) (pmin, pmax float64, err error) {
	pmin, pmax, err = PowerBounds(dc, tm, search)
	if err != nil {
		return 0, 0, err
	}
	dc.Pconst = (pmin + pmax) / 2
	return pmin, pmax, nil
}
