package assign

import (
	"context"
	"fmt"

	"thermaldc/internal/linprog"
	"thermaldc/internal/model"
	"thermaldc/internal/tempsearch"
	"thermaldc/internal/thermal"
)

// MinPowerResult is the outcome of the dual problem the paper lists as its
// first future-work item (§VIII): minimize total power subject to a
// reward-rate floor.
type MinPowerResult struct {
	// CracOut is the best outlet-temperature vector found.
	CracOut []float64
	// RewardFloor echoes the requested floor.
	RewardFloor float64
	// NodeCorePower / NodePower describe the relaxed (continuous)
	// solution; RelaxedPower is its exact total power.
	NodeCorePower []float64
	NodePower     []float64
	RelaxedPower  float64
	// PStates, Stage3 and IntegerPower describe the integer solution
	// after Stage-2 rounding. Because rounding only lowers node power,
	// Stage3.RewardRate may fall slightly below the floor; RewardGap =
	// RewardFloor − Stage3.RewardRate (≤ 0 means the floor is met).
	PStates      []int
	Stage3       *Stage3Result
	IntegerPower float64
	RewardGap    float64
	// SearchEvals counts LP solves during the temperature search.
	SearchEvals int
}

// minPowerFixed solves: minimize total power (compute + linearized CRAC)
// subject to aggregate reward rate ≥ floor and the redlines, at fixed
// CRAC outlet temperatures. It reuses the Stage-1 segment encoding with
// objective and reward swapped between objective and constraint.
func minPowerFixed(dc *model.DataCenter, tm *thermal.Model, arrs map[int]*segmentSet, cracOut []float64, floor float64) (*Stage1Result, error) {
	ncn := dc.NCN()
	p := linprog.NewProblem(linprog.Minimize)

	lin := tm.LinearizeCRACPower(cracOut)
	baseConst := 0.0
	nodeCoef := make([]float64, ncn)
	for j := 0; j < ncn; j++ {
		nodeCoef[j] = 1
		baseConst += dc.NodeType(j).BasePower
	}
	for _, l := range lin {
		baseConst += l.Const
		for j, c := range l.Coef {
			nodeCoef[j] += c
			baseConst += c * dc.NodeType(j).BasePower
		}
	}

	type segVar struct {
		node int
		id   int
	}
	var segVars []segVar
	var rewardTerms []linprog.Term
	for j := 0; j < ncn; j++ {
		set := arrs[dc.Nodes[j].Type]
		for s, seg := range set.scaled[j] {
			id := p.AddVar(fmt.Sprintf("seg_%d_%d", j, s), 0, seg.Length, nodeCoef[j])
			segVars = append(segVars, segVar{j, id})
			rewardTerms = append(rewardTerms, linprog.Term{Var: id, Coef: seg.Slope})
		}
	}
	// Reward floor.
	p.AddRow(linprog.GE, floor, rewardTerms...)
	// Redlines.
	base := tm.InletBase(cracOut)
	g := tm.PowerSensitivity()
	redline := dc.Redline()
	for t := 0; t < dc.NumThermal(); t++ {
		rhs := redline[t] - base[t]
		var terms []linprog.Term
		for _, sv := range segVars {
			if gj := g.At(t, sv.node); gj != 0 {
				terms = append(terms, linprog.Term{Var: sv.id, Coef: gj})
			}
		}
		for j := 0; j < ncn; j++ {
			rhs -= g.At(t, j) * dc.NodeType(j).BasePower
		}
		if rhs < 0 {
			return nil, fmt.Errorf("assign: redline %d violated by base power alone at outlets %v", t, cracOut)
		}
		p.AddRow(linprog.LE, rhs, terms...)
	}

	sol, err := p.Solve()
	if err != nil {
		return nil, err
	}
	res := &Stage1Result{
		CracOut:       append([]float64(nil), cracOut...),
		NodeCorePower: make([]float64, ncn),
		NodePower:     make([]float64, ncn),
	}
	reward := 0.0
	for i, sv := range segVars {
		v := sol.Value(sv.id)
		res.NodeCorePower[sv.node] += v
		reward += rewardTerms[i].Coef * v
	}
	res.PredictedARR = reward
	for j := 0; j < ncn; j++ {
		res.NodePower[j] = dc.NodeType(j).BasePower + res.NodeCorePower[j]
		res.ComputePower += res.NodePower[j]
	}
	for _, cp := range tm.CRACPowers(cracOut, res.NodePower) {
		res.CRACPower += cp
	}
	res.TotalPower = res.ComputePower + res.CRACPower
	tin := tm.InletTemps(cracOut, res.NodePower)
	res.Feasible = tm.RedlineSlack(tin) >= -powerTolerance && reward >= floor-1e-6
	return res, nil
}

// segmentSet caches per-node scaled envelopes so the temperature search
// does not rebuild them per evaluation.
type segmentSet struct {
	scaled map[int][]segment
}

type segment struct {
	Length, Slope float64
}

func buildSegmentSets(dc *model.DataCenter, psi float64) (map[int]*segmentSet, error) {
	arrs, err := nodeARRs(dc, psi)
	if err != nil {
		return nil, err
	}
	sets := make(map[int]*segmentSet)
	for t := range dc.NodeTypes {
		sets[t] = &segmentSet{scaled: make(map[int][]segment)}
	}
	for j := range dc.Nodes {
		t := dc.Nodes[j].Type
		nt := dc.NodeType(j)
		sc := arrs[t].Scale(float64(nt.NumCores))
		var segs []segment
		for _, s := range sc.Segments() {
			segs = append(segs, segment{Length: s.Length, Slope: s.Slope})
		}
		sets[t].scaled[j] = segs
	}
	return sets, nil
}

// MinPowerForReward minimizes the data center's total power subject to a
// steady-state reward-rate floor — the paper's §VIII future-work problem.
// The CRAC outlet temperatures are searched with the same discretized
// strategy as the primal problem; the relaxed solution is then converted
// to integer P-states (Stage 2) and the achieved reward evaluated with the
// Stage-3 LP.
func MinPowerForReward(dc *model.DataCenter, tm *thermal.Model, rewardFloor float64, opts Options) (*MinPowerResult, error) {
	if rewardFloor <= 0 {
		return nil, fmt.Errorf("assign: reward floor must be positive, got %g", rewardFloor)
	}
	sets, err := buildSegmentSets(dc, opts.Psi)
	if err != nil {
		return nil, err
	}
	// minPowerFixed builds a fresh LP per call over the read-only segment
	// sets, so one shared evaluator serves all search workers.
	eval := func(cracOut []float64) (float64, bool) {
		res, err := minPowerFixed(dc, tm, sets, cracOut, rewardFloor)
		if err != nil || !res.Feasible {
			return 0, false
		}
		return -res.TotalPower, true
	}
	best, err := runSearch(context.Background(), dc.NCRAC(), opts, tempsearch.Shared(eval))
	if err != nil {
		return nil, fmt.Errorf("assign: no outlet assignment can reach reward %g within the redlines: %w", rewardFloor, err)
	}
	s1, err := minPowerFixed(dc, tm, sets, best.Out, rewardFloor)
	if err != nil {
		return nil, err
	}

	arrs, err := nodeARRs(dc, opts.Psi)
	if err != nil {
		return nil, err
	}
	pstates, err := Stage2(dc, arrs, s1)
	if err != nil {
		return nil, err
	}
	s3, err := Stage3(dc, pstates)
	if err != nil {
		return nil, err
	}
	pcn := NodePowersFromPStates(dc, pstates)
	return &MinPowerResult{
		CracOut:       s1.CracOut,
		RewardFloor:   rewardFloor,
		NodeCorePower: s1.NodeCorePower,
		NodePower:     s1.NodePower,
		RelaxedPower:  s1.TotalPower,
		PStates:       pstates,
		Stage3:        s3,
		IntegerPower:  tm.TotalPower(s1.CracOut, pcn),
		RewardGap:     rewardFloor - s3.RewardRate,
		SearchEvals:   best.Evals,
	}, nil
}
