package assign_test

import (
	"math"
	"testing"

	"thermaldc/internal/assign"
	"thermaldc/internal/linprog"
	"thermaldc/internal/pwl"
	"thermaldc/internal/scenario"
	"thermaldc/internal/tempsearch"
)

// smallScenario builds a reduced instance: 2 CRACs, 4 racks × 5 nodes.
func smallScenario(t testing.TB, seed int64) *scenario.Scenario {
	t.Helper()
	cfg := scenario.Default(0.3, 0.1, seed)
	cfg.NCracs = 2
	cfg.NNodes = 20
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatalf("scenario.Build: %v", err)
	}
	return sc
}

func TestPowerBoundsSanity(t *testing.T) {
	sc := smallScenario(t, 1)
	if sc.Pmin >= sc.Pmax {
		t.Fatalf("Pmin %g >= Pmax %g", sc.Pmin, sc.Pmax)
	}
	// Pmin at least the total base power; Pmax at least total max compute.
	baseSum, maxSum := 0.0, 0.0
	for j := range sc.DC.Nodes {
		baseSum += sc.DC.NodeType(j).MinPower()
		maxSum += sc.DC.NodeType(j).MaxPower()
	}
	if sc.Pmin < baseSum-1e-9 {
		t.Errorf("Pmin %g below base power %g", sc.Pmin, baseSum)
	}
	if sc.Pmax < maxSum-1e-9 {
		t.Errorf("Pmax %g below max compute power %g", sc.Pmax, maxSum)
	}
	// Equation 18 default: Pconst halfway.
	want := (sc.Pmin + sc.Pmax) / 2
	if math.Abs(sc.DC.Pconst-want) > 1e-9 {
		t.Errorf("Pconst = %g, want %g", sc.DC.Pconst, want)
	}
}

func TestStage1FixedFeasibleAndOversubscribed(t *testing.T) {
	sc := smallScenario(t, 2)
	arrs := make([]*pwl.Func, len(sc.DC.NodeTypes))
	for j := range arrs {
		f, err := assign.ARR(sc.DC, j, 50)
		if err != nil {
			t.Fatal(err)
		}
		arrs[j] = f
	}
	cracOut := []float64{15, 15}
	res, err := assign.Stage1Fixed(sc.DC, sc.Thermal, arrs, cracOut)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("Stage 1 infeasible at %v: total power %g vs Pconst %g", cracOut, res.TotalPower, sc.DC.Pconst)
	}
	if res.PredictedARR <= 0 {
		t.Error("predicted ARR should be positive")
	}
	if res.TotalPower > sc.DC.Pconst+1e-6 {
		t.Errorf("total power %g exceeds Pconst %g", res.TotalPower, sc.DC.Pconst)
	}
	// With Pconst halfway between the bounds the power constraint binds:
	// the data center is oversubscribed, so the LP should use most of the
	// power budget.
	if res.TotalPower < 0.9*sc.DC.Pconst {
		t.Errorf("total power %g uses < 90%% of Pconst %g — not oversubscribed?", res.TotalPower, sc.DC.Pconst)
	}
	for j, x := range res.NodeCorePower {
		nt := sc.DC.NodeType(j)
		max := float64(nt.NumCores) * nt.Core.PStatePower(0)
		if x < -1e-9 || x > max+1e-9 {
			t.Errorf("node %d core power %g outside [0, %g]", j, x, max)
		}
	}
}

// TestStage1AggregationExactness cross-checks the node-aggregated LP
// against an explicitly per-core formulation on a small instance: the
// objectives must agree (the aggregation argument in DESIGN.md).
func TestStage1AggregationExactness(t *testing.T) {
	sc := smallScenario(t, 3)
	dc, tm := sc.DC, sc.Thermal
	arrs := make([]*pwl.Func, len(dc.NodeTypes))
	for j := range arrs {
		f, err := assign.ARR(dc, j, 50)
		if err != nil {
			t.Fatal(err)
		}
		arrs[j] = f
	}
	cracOut := []float64{15, 16}
	agg, err := assign.Stage1Fixed(dc, tm, arrs, cracOut)
	if err != nil {
		t.Fatal(err)
	}

	// Per-core formulation: one set of segment variables per core.
	p := linprog.NewProblem(linprog.Maximize)
	type coreSeg struct {
		node int
		id   int
	}
	var segs []coreSeg
	for j := range dc.Nodes {
		nt := dc.NodeType(j)
		env := arrs[dc.Nodes[j].Type]
		for c := 0; c < nt.NumCores; c++ {
			for _, s := range env.Segments() {
				id := p.AddVar("", 0, s.Length, s.Slope)
				segs = append(segs, coreSeg{j, id})
			}
		}
	}
	lin := tm.LinearizeCRACPower(cracOut)
	baseConst := 0.0
	nodeCoef := make([]float64, dc.NCN())
	for j := 0; j < dc.NCN(); j++ {
		nodeCoef[j] = 1
		baseConst += dc.NodeType(j).BasePower
	}
	for _, l := range lin {
		baseConst += l.Const
		for j, c := range l.Coef {
			nodeCoef[j] += c
			baseConst += c * dc.NodeType(j).BasePower
		}
	}
	var powerTerms []linprog.Term
	for _, s := range segs {
		powerTerms = append(powerTerms, linprog.Term{Var: s.id, Coef: nodeCoef[s.node]})
	}
	p.AddRow(linprog.LE, dc.Pconst-baseConst, powerTerms...)
	base := tm.InletBase(cracOut)
	g := tm.PowerSensitivity()
	redline := dc.Redline()
	for th := 0; th < dc.NumThermal(); th++ {
		rhs := redline[th] - base[th]
		var terms []linprog.Term
		for _, s := range segs {
			if gj := g.At(th, s.node); gj != 0 {
				terms = append(terms, linprog.Term{Var: s.id, Coef: gj})
			}
		}
		for j := 0; j < dc.NCN(); j++ {
			rhs -= g.At(th, j) * dc.NodeType(j).BasePower
		}
		p.AddRow(linprog.LE, rhs, terms...)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-agg.PredictedARR) > 1e-6*(1+math.Abs(sol.Objective)) {
		t.Errorf("per-core LP %g != aggregated LP %g", sol.Objective, agg.PredictedARR)
	}
}

func TestThreeStageEndToEnd(t *testing.T) {
	sc := smallScenario(t, 4)
	opts := assign.DefaultOptions()
	res, err := assign.ThreeStage(sc.DC, sc.Thermal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RewardRate() <= 0 {
		t.Fatal("three-stage reward rate should be positive")
	}
	// Stage-3 reward cannot exceed the arrival-rate bound Σ λ_i·r_i.
	arrivalBound := 0.0
	for _, tt := range sc.DC.TaskTypes {
		arrivalBound += tt.ArrivalRate * tt.Reward
	}
	if res.RewardRate() > arrivalBound+1e-6 {
		t.Errorf("reward rate %g exceeds arrival bound %g", res.RewardRate(), arrivalBound)
	}
	// The integer P-state assignment must respect power and redlines
	// (with the Stage-2 budget rule, node powers only shrink).
	pcn := assign.NodePowersFromPStates(sc.DC, res.PStates)
	for j := range pcn {
		if pcn[j] > res.Stage1.NodePower[j]+1e-9 {
			t.Errorf("node %d P-state power %g exceeds Stage-1 budget %g", j, pcn[j], res.Stage1.NodePower[j])
		}
	}
	total := sc.Thermal.TotalPower(res.Stage1.CracOut, pcn)
	if total > sc.DC.Pconst+1e-6 {
		t.Errorf("post-Stage-2 total power %g exceeds Pconst %g", total, sc.DC.Pconst)
	}
	tin := sc.Thermal.InletTemps(res.Stage1.CracOut, pcn)
	if slack := sc.Thermal.RedlineSlack(tin); slack < -1e-6 {
		t.Errorf("redline violated by %g °C after Stage 2", -slack)
	}
	// Core utilizations within [0, 1].
	for k, u := range res.Stage3.CoreUtilization {
		if u < -1e-9 || u > 1+1e-6 {
			t.Errorf("core %d utilization %g", k, u)
		}
	}
}

func TestBaselineEndToEnd(t *testing.T) {
	sc := smallScenario(t, 5)
	res, err := assign.Baseline(sc.DC, sc.Thermal, assign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("baseline result infeasible")
	}
	if res.RewardRate <= 0 || res.RewardRate > res.RewardRateLP+1e-9 {
		t.Errorf("rounded reward %g vs LP %g", res.RewardRate, res.RewardRateLP)
	}
	for j := range sc.DC.Nodes {
		sum := 0.0
		for i := range sc.DC.TaskTypes {
			f := res.Frac[i][j]
			if f < -1e-9 || f > 1+1e-9 {
				t.Fatalf("FRAC[%d][%d] = %g", i, j, f)
			}
			sum += f
		}
		if sum > 1+1e-6 {
			t.Fatalf("node %d fractions sum to %g", j, sum)
		}
		// Equation 22: used cores integer and consistent with fractions.
		used := sum * float64(sc.DC.NodeType(j).NumCores)
		if math.Abs(used-float64(res.UsedCores[j])) > 1e-6 {
			t.Errorf("node %d used cores %g, recorded %d", j, used, res.UsedCores[j])
		}
	}
	if res.TotalPower > sc.DC.Pconst+1e-6 {
		t.Errorf("baseline power %g exceeds Pconst %g", res.TotalPower, sc.DC.Pconst)
	}
}

func TestThreeStageBeatsOrMatchesBaselineOnAverage(t *testing.T) {
	// The paper's headline claim, at reduced scale: averaged over seeds,
	// the best-of-ψ three-stage assignment should not lose to the
	// P0-or-off baseline. Individual seeds may go either way; the average
	// improvement must be non-negative.
	if testing.Short() {
		t.Skip("multi-seed comparison in -short mode")
	}
	sum := 0.0
	const trials = 3
	for seed := int64(10); seed < 10+trials; seed++ {
		sc := smallScenario(t, seed)
		bl, err := assign.Baseline(sc.DC, sc.Thermal, assign.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		best := 0.0
		for _, psi := range []float64{25, 50} {
			opts := assign.DefaultOptions()
			opts.Psi = psi
			ts, err := assign.ThreeStage(sc.DC, sc.Thermal, opts)
			if err != nil {
				t.Fatal(err)
			}
			if ts.RewardRate() > best {
				best = ts.RewardRate()
			}
		}
		improvement := (best - bl.RewardRate) / bl.RewardRate
		t.Logf("seed %d: three-stage %g vs baseline %g (%+.2f%%)", seed, best, bl.RewardRate, 100*improvement)
		sum += improvement
	}
	if sum/trials < -0.02 {
		t.Errorf("average improvement %.2f%% is negative", 100*sum/trials)
	}
}

func TestGridAndCoarseToFineAgreeOnSmallInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("grid ablation in -short mode")
	}
	sc := smallScenario(t, 6)
	coarse := assign.DefaultOptions()
	coarse.Search = tempsearch.Config{Lo: 10, Hi: 20, CoarseStep: 5, FineStep: 2.5}
	grid := coarse
	grid.Strategy = assign.FullGrid
	a, err := assign.ThreeStage(sc.DC, sc.Thermal, coarse)
	if err != nil {
		t.Fatal(err)
	}
	b, err := assign.ThreeStage(sc.DC, sc.Thermal, grid)
	if err != nil {
		t.Fatal(err)
	}
	// The grid is exhaustive, so it can only be at least as good in
	// Stage-1 value; the two should be close.
	if a.Stage1.PredictedARR > b.Stage1.PredictedARR+1e-6 {
		t.Errorf("coarse-to-fine %g beat the exhaustive grid %g — impossible",
			a.Stage1.PredictedARR, b.Stage1.PredictedARR)
	}
	if b.Stage1.PredictedARR > a.Stage1.PredictedARR*1.1 {
		t.Errorf("coarse-to-fine much worse than grid: %g vs %g", a.Stage1.PredictedARR, b.Stage1.PredictedARR)
	}
}
