package assign_test

import (
	"context"
	"math"
	"testing"

	"thermaldc/internal/assign"
	"thermaldc/internal/scenario"
	"thermaldc/internal/stats"
	"thermaldc/internal/tempsearch"
)

func warmScenario(t *testing.T, seed int64, nnodes, ncracs int) *scenario.Scenario {
	t.Helper()
	cfg := scenario.Default(0.3, 0.1, seed)
	cfg.NNodes, cfg.NCracs = nnodes, ncracs
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestScratchSolveMatchesSolveContext drives the allocating and the
// scratch Stage-1 solve over the same outlet vectors (on identically built
// solvers, so the pivot history matches) and requires every output to be
// bit-identical, including the infeasible corners.
func TestScratchSolveMatchesSolveContext(t *testing.T) {
	sc := warmScenario(t, 5, 20, 2)
	arrs := buildARRs(t, sc, 50)
	ref := assign.NewStage1Solver(sc.DC, sc.Thermal, arrs)
	scr := assign.NewStage1Solver(sc.DC, sc.Thermal, arrs)

	search := tempsearch.DefaultConfig()
	lo, hi := search.Lo, search.Hi
	rng := stats.NewRand(77)
	for trial := 0; trial < 25; trial++ {
		out := make([]float64, sc.DC.NCRAC())
		for i := range out {
			out[i] = lo + (hi-lo)*rng.Float64()
		}
		want, errW := ref.SolveContext(context.Background(), out)
		got, errG := scr.SolveScratchContext(context.Background(), out)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("trial %d: err mismatch: %v vs %v", trial, errW, errG)
		}
		if got.Feasible != want.Feasible {
			t.Fatalf("trial %d: feasible %v vs %v", trial, got.Feasible, want.Feasible)
		}
		if errW != nil {
			continue
		}
		if !bitsEq(got.PredictedARR, want.PredictedARR) ||
			!bitsEq(got.TotalPower, want.TotalPower) ||
			!bitsEq(got.ComputePower, want.ComputePower) ||
			!bitsEq(got.CRACPower, want.CRACPower) ||
			!bitsEq(got.PowerShadowPrice, want.PowerShadowPrice) {
			t.Fatalf("trial %d: scalar fields differ: %+v vs %+v", trial, got, want)
		}
		for j := range want.NodePower {
			if !bitsEq(got.NodePower[j], want.NodePower[j]) || !bitsEq(got.NodeCorePower[j], want.NodeCorePower[j]) {
				t.Fatalf("trial %d node %d: power %v vs %v", trial, j, got.NodePower[j], want.NodePower[j])
			}
		}
		for i := range want.CracOut {
			if !bitsEq(got.CracOut[i], want.CracOut[i]) {
				t.Fatalf("trial %d: CracOut differ", trial)
			}
		}
	}
}

// TestScratchSolveWarmZeroAllocs pins the scratch path's contract: once
// warmed, alternating outlet candidates through SolveScratch — exactly
// what every temperature-search worker does thousands of times per epoch —
// performs zero heap allocations.
func TestScratchSolveWarmZeroAllocs(t *testing.T) {
	sc := warmScenario(t, 5, 20, 2)
	arrs := buildARRs(t, sc, 50)
	s := assign.NewStage1Solver(sc.DC, sc.Thermal, arrs)

	search := tempsearch.DefaultConfig()
	mid := (search.Lo + search.Hi) / 2
	outs := [][]float64{
		{mid, mid},
		{mid - 1, mid + 1},
	}
	for _, out := range outs {
		if res, err := s.SolveScratch(out); err != nil || !res.Feasible {
			t.Fatalf("warm-up solve at %v: %v (feasible=%v)", out, err, res != nil && res.Feasible)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(30, func() {
		out := outs[i%2]
		i++
		if _, err := s.SolveScratch(out); err != nil {
			t.Fatalf("scratch solve: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm SolveScratch allocates %.1f objects/op, want 0", allocs)
	}
}

// TestStage3SolverMatchesOneShot checks the skeleton-caching Stage-3
// solver against the one-shot Stage3Context bit-for-bit, across P-state
// vectors that exercise both the patch path (repeated signature) and the
// rebuild path (new signature).
func TestStage3SolverMatchesOneShot(t *testing.T) {
	sc := warmScenario(t, 9, 20, 2)
	ncores := sc.DC.NumCores()

	allZero := make([]int, ncores)
	mixed := make([]int, ncores)
	for k := range mixed {
		mixed[k] = k % 2
	}
	shifted := make([]int, ncores)
	for k := range shifted {
		shifted[k] = 1
	}
	// Same signatures as mixed but different counts: patch, not rebuild.
	mixed2 := make([]int, ncores)
	for k := range mixed2 {
		mixed2[k] = (k / 3) % 2
	}

	warm := assign.NewStage3Solver(sc.DC)
	vectors := [][]int{allZero, mixed, mixed, mixed2, shifted, allZero}
	for vi, ps := range vectors {
		want, err := assign.Stage3Context(context.Background(), sc.DC, ps)
		if err != nil {
			t.Fatalf("vector %d one-shot: %v", vi, err)
		}
		got, err := warm.SolveContext(context.Background(), ps)
		if err != nil {
			t.Fatalf("vector %d warm: %v", vi, err)
		}
		if !bitsEq(got.RewardRate, want.RewardRate) {
			t.Fatalf("vector %d: reward %v vs %v", vi, got.RewardRate, want.RewardRate)
		}
		for i := range want.TC {
			for k := range want.TC[i] {
				if !bitsEq(got.TC[i][k], want.TC[i][k]) {
					t.Fatalf("vector %d: TC[%d][%d] = %v, want %v", vi, i, k, got.TC[i][k], want.TC[i][k])
				}
			}
		}
		for k := range want.CoreUtilization {
			if !bitsEq(got.CoreUtilization[k], want.CoreUtilization[k]) {
				t.Fatalf("vector %d: util[%d] differs", vi, k)
			}
		}
	}
	// The cache holds the last signature only: allZero, mixed, shifted and
	// the trailing allZero each rebuild, while the mixed repeat and mixed2
	// (same signature, different counts) must hit the patch path.
	if rb := warm.Rebuilds(); rb != 4 {
		t.Fatalf("Rebuilds = %d, want 4 (repeat signatures must patch, not rebuild)", rb)
	}
	if st := warm.TakeStats(); st.Solves != int64(len(vectors)) {
		t.Fatalf("Stats.Solves = %d, want %d", st.Solves, len(vectors))
	}
}

// TestThreeStageWarmWorkersIsolatedAndCached checks the epoch hot path of
// the full solver: (a) a parallel search gives results bit-identical to a
// serial one (workers share nothing), (b) cloned workers own distinct
// simplex workspaces, and (c) a second epoch re-solve runs entirely on
// warm workspaces — zero workspace bytes allocated across all Stage-1
// workers and the Stage-3 solver.
func TestThreeStageWarmWorkersIsolatedAndCached(t *testing.T) {
	sc := warmScenario(t, 5, 20, 2)
	opts := assign.DefaultOptions()

	opts.Search.Parallelism = 1
	serial, err := assign.NewThreeStageSolver(sc.DC, sc.Thermal, opts)
	if err != nil {
		t.Fatal(err)
	}
	refPlan, err := serial.Solve()
	if err != nil {
		t.Fatal(err)
	}

	opts.Search.Parallelism = 4
	par, err := assign.NewThreeStageSolver(sc.DC, sc.Thermal, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := par.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEq(plan.RewardRate(), refPlan.RewardRate()) ||
		!bitsEq(plan.Stage1.PredictedARR, refPlan.Stage1.PredictedARR) {
		t.Fatalf("parallel result differs from serial: %v vs %v", plan.RewardRate(), refPlan.RewardRate())
	}
	for i := range refPlan.Stage1.CracOut {
		if !bitsEq(plan.Stage1.CracOut[i], refPlan.Stage1.CracOut[i]) {
			t.Fatal("parallel search picked different outlets than serial")
		}
	}

	// Cloned workers must never share a workspace with the base solver.
	base := par.Stage1Warm()
	if clone := base.Clone(); clone.Workspace() == base.Workspace() {
		t.Fatal("Clone shares the base solver's workspace")
	}

	// First epoch grew the workspaces; drain the counters … The warm-epoch
	// check runs on the serial solver: the parallel pool creates workers
	// lazily as the search goroutines ask for them, so under load (-race on
	// one CPU) a later epoch can legitimately clone a worker the first
	// epoch never needed, which is growth by design, not a cold re-solve.
	first := serial.TakeLPStats()
	if first.Solves == 0 || first.AllocBytes == 0 {
		t.Fatalf("first epoch stats implausible: %+v", first)
	}
	// … then a second epoch must stay at the high-water mark.
	if _, err := serial.Solve(); err != nil {
		t.Fatal(err)
	}
	second := serial.TakeLPStats()
	if second.Solves == 0 {
		t.Fatalf("second epoch recorded no solves: %+v", second)
	}
	if second.AllocBytes != 0 {
		t.Fatalf("second epoch allocated %d workspace bytes, want 0 (warm re-solve)", second.AllocBytes)
	}
}
