package assign_test

import (
	"testing"

	"thermaldc/internal/assign"
	"thermaldc/internal/tempsearch"
)

func TestNaiveOndemandFeasibleAndClamped(t *testing.T) {
	sc := smallScenario(t, 41)
	res, err := assign.NaiveOndemand(sc.DC, sc.Thermal, tempsearch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPower > sc.DC.Pconst+1e-6 {
		t.Errorf("naive power %g exceeds Pconst %g", res.TotalPower, sc.DC.Pconst)
	}
	// Oversubscription: not every core fits at P-state 0.
	if res.ActiveCores >= sc.DC.NumCores() {
		t.Errorf("all %d cores active — the scenario should be oversubscribed", res.ActiveCores)
	}
	if res.ActiveCores <= 0 {
		t.Error("no active cores at all")
	}
	// P-states are only P0 or off, consistent with ActiveCores.
	on := 0
	for k, ps := range res.PStates {
		j := sc.DC.CoreNode(k)
		if ps != 0 && ps != sc.DC.NodeType(j).OffState() {
			t.Fatalf("core %d in intermediate P-state %d", k, ps)
		}
		if ps == 0 {
			on++
		}
	}
	if on != res.ActiveCores {
		t.Errorf("%d cores at P0, recorded %d", on, res.ActiveCores)
	}
	if res.Stage3.RewardRate <= 0 {
		t.Error("naive reward should be positive")
	}
}

func TestNaiveNeverBeatsThreeStageByMuch(t *testing.T) {
	// The naive clamp ignores rewards and intermediate P-states; it should
	// not outperform the three-stage technique (tiny LP/rounding noise
	// aside).
	sc := smallScenario(t, 42)
	naive, err := assign.NaiveOndemand(sc.DC, sc.Thermal, tempsearch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	three, err := assign.ThreeStage(sc.DC, sc.Thermal, assign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if naive.Stage3.RewardRate > three.RewardRate()*1.02 {
		t.Errorf("naive %g beats three-stage %g", naive.Stage3.RewardRate, three.RewardRate())
	}
}

func TestActiveCoreDistributionEven(t *testing.T) {
	sc := smallScenario(t, 43)
	res, err := assign.NaiveOndemand(sc.DC, sc.Thermal, tempsearch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin spreading: per-node active counts differ by at most 1
	// relative to the even split across nodes with equal core counts.
	counts := make([]int, sc.DC.NCN())
	for k, ps := range res.PStates {
		if ps == 0 {
			counts[sc.DC.CoreNode(k)]++
		}
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Errorf("active cores unevenly spread: min %d max %d", min, max)
	}
}
