package assign

import (
	"context"
	"fmt"
	"sort"

	"thermaldc/internal/linprog"
	"thermaldc/internal/model"
)

// Stage3Result holds the desired execution rates found by the Stage-3 LP.
type Stage3Result struct {
	// TC[i][k] is the desired execution rate of task type i on global core
	// k (tasks per second) — the paper's TC matrix.
	TC [][]float64
	// RewardRate is the LP objective Σ_i r_i Σ_k TC(i, k): the steady-state
	// reward per second of the assignment.
	RewardRate float64
	// CoreUtilization[k] = Σ_i TC(i,k)/ECS(i, CT_k, PS_k) ∈ [0, 1].
	CoreUtilization []float64
}

// Stage3 solves the Equation-7 LP with P-states fixed (the remaining
// decision is the TC matrix). Because ECS depends only on (task type,
// node type, P-state), cores are grouped by that pair; the group LP is
// exactly equivalent to the per-core LP and its solution is split evenly
// across the group's cores afterwards.
//
// Constraints (paper Section V.B.1 with PS fixed):
//  1. Per core (group): Σ_i TC(i,k)/ECS ≤ 1 (×count per group).
//  2. TC(i,k) = 0 when the P-state cannot meet the deadline (variables for
//     such pairs are simply not created).
//  3. Per task: Σ_k TC(i,k) ≤ λ_i.
func Stage3(dc *model.DataCenter, pstates []int) (*Stage3Result, error) {
	return Stage3Context(context.Background(), dc, pstates)
}

// Stage3Context is Stage3 under a context-governed simplex solve. It is the
// one-shot form of Stage3Solver, which additionally caches the group LP
// skeleton across calls; both produce bit-identical results (verified by
// TestStage3SolverMatchesOneShot).
func Stage3Context(ctx context.Context, dc *model.DataCenter, pstates []int) (*Stage3Result, error) {
	if len(pstates) != dc.NumCores() {
		return nil, fmt.Errorf("assign: got %d P-states for %d cores", len(pstates), dc.NumCores())
	}

	// Group cores by (node type, P-state).
	type groupKey struct{ nodeType, pstate int }
	counts := make(map[groupKey]int)
	for j := range dc.Nodes {
		lo, hi := dc.CoreRange(j)
		for k := lo; k < hi; k++ {
			counts[groupKey{dc.Nodes[j].Type, pstates[k]}]++
		}
	}
	type group struct {
		key   groupKey
		count int
	}
	var groups []group
	for k, c := range counts {
		if k.pstate >= dc.NodeTypes[k.nodeType].OffState() {
			continue // off cores execute nothing
		}
		groups = append(groups, group{k, c})
	}
	// Deterministic order for reproducible LP construction.
	sort.Slice(groups, func(a, b int) bool {
		if groups[a].key.nodeType != groups[b].key.nodeType {
			return groups[a].key.nodeType < groups[b].key.nodeType
		}
		return groups[a].key.pstate < groups[b].key.pstate
	})

	p := linprog.NewProblem(linprog.Maximize)
	t := dc.T()
	varID := make(map[[2]int]int) // (task, group index) -> var
	for i := 0; i < t; i++ {
		for gi, g := range groups {
			if !deadlineFeasible(dc, i, g.key.nodeType, g.key.pstate) {
				continue // constraint 2
			}
			id := p.AddVar(fmt.Sprintf("tc_%d_%d", i, gi), 0, linprog.Inf, dc.TaskTypes[i].Reward)
			varID[[2]int{i, gi}] = id
		}
	}
	// Constraint 1 per group.
	for gi, g := range groups {
		var terms []linprog.Term
		for i := 0; i < t; i++ {
			if id, ok := varID[[2]int{i, gi}]; ok {
				ecs := dc.ECS[i][g.key.nodeType][g.key.pstate]
				terms = append(terms, linprog.Term{Var: id, Coef: 1 / ecs})
			}
		}
		if len(terms) > 0 {
			p.AddRow(linprog.LE, float64(g.count), terms...)
		}
	}
	// Constraint 3 per task type.
	for i := 0; i < t; i++ {
		var terms []linprog.Term
		for gi := range groups {
			if id, ok := varID[[2]int{i, gi}]; ok {
				terms = append(terms, linprog.Term{Var: id, Coef: 1})
			}
		}
		if len(terms) > 0 {
			p.AddRow(linprog.LE, dc.TaskTypes[i].ArrivalRate, terms...)
		}
	}

	sol, err := p.SolveContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("assign: Stage-3 LP: %w", err)
	}

	// Disaggregate group rates evenly over member cores.
	ncores := dc.NumCores()
	res := &Stage3Result{
		TC:              make([][]float64, t),
		RewardRate:      sol.Objective,
		CoreUtilization: make([]float64, ncores),
	}
	for i := range res.TC {
		res.TC[i] = make([]float64, ncores)
	}
	groupIdx := make(map[groupKey]int, len(groups))
	for gi, g := range groups {
		groupIdx[g.key] = gi
	}
	for j := range dc.Nodes {
		lo, hi := dc.CoreRange(j)
		for k := lo; k < hi; k++ {
			key := groupKey{dc.Nodes[j].Type, pstates[k]}
			gi, ok := groupIdx[key]
			if !ok {
				continue // off core
			}
			g := groups[gi]
			for i := 0; i < t; i++ {
				id, ok := varID[[2]int{i, gi}]
				if !ok {
					continue
				}
				rate := sol.Value(id) / float64(g.count)
				res.TC[i][k] = rate
				res.CoreUtilization[k] += rate / dc.ECS[i][key.nodeType][key.pstate]
			}
		}
	}
	return res, nil
}
