package assign

import (
	"context"
	"fmt"
	"sort"

	"thermaldc/internal/linprog"
	"thermaldc/internal/model"
	"thermaldc/internal/telemetry"
)

// s3Key identifies a Stage-3 core group: cores of the same node type at the
// same P-state have identical ECS, so their LP columns are interchangeable.
type s3Key struct{ nodeType, pstate int }

// s3Group is one active group (non-off P-state) with its core count.
type s3Group struct {
	key   s3Key
	count int
}

// Stage3Solver is the warm-start form of Stage3: the group LP skeleton is
// cached keyed by the ordered group-key signature, so epochs whose P-state
// assignment uses the same (node type, P-state) combinations — the common
// case once the controller settles — only patch the group-count and
// arrival-rate right-hand sides and re-solve on a retained simplex
// workspace. Solutions are bit-identical to Stage3Context: coefficients
// (rewards and 1/ECS) depend only on the group key, never on the counts.
//
// Not safe for concurrent use.
type Stage3Solver struct {
	dc *model.DataCenter
	ws linprog.Workspace

	// Cached skeleton, valid while the group signature matches keys.
	p        *linprog.Problem
	keys     []s3Key        // ordered signature the skeleton was built for
	groups   []s3Group      // current groups (counts repatched every call)
	varID    map[[2]int]int // (task, group index) -> LP var
	groupRow []int          // group index -> LP row (-1 when no terms)
	taskRow  []int          // task index -> LP row (-1 when no terms)
	rebuilds int

	// method is applied to the skeleton at (re)build time.
	method linprog.Method

	// Telemetry handles; zero values are no-ops (see Stage1Solver).
	mSolves   telemetry.Counter
	mRebuilds telemetry.Counter

	countMap map[s3Key]int // per-call scratch
}

// NewStage3Solver prepares a reusable Stage-3 solver for dc.
func NewStage3Solver(dc *model.DataCenter) *Stage3Solver {
	return &Stage3Solver{dc: dc, countMap: make(map[s3Key]int)}
}

// Rebuilds reports how many times the LP skeleton was built from scratch
// because the group signature changed (1 on first solve).
func (s *Stage3Solver) Rebuilds() int { return s.rebuilds }

// SetMethod selects the simplex core for the group LP (MethodTableau, the
// zero value, reproduces the golden outputs). It applies to the current
// skeleton immediately and to any future rebuild.
func (s *Stage3Solver) SetMethod(m linprog.Method) {
	s.method = m
	if s.p != nil {
		s.p.Method = m
	}
}

// SetRecorder wires the solver to rec: LP-solve spans go to rec's tracer
// and per-solve/skeleton-rebuild counters to its metrics registry. A nil
// rec detaches cleanly.
func (s *Stage3Solver) SetRecorder(rec *telemetry.Recorder) {
	s.ws.Trace = rec.Tracer()
	reg := rec.Registry()
	s.mSolves = reg.Counter("tapo_stage3_solves_total", "Stage-3 group-LP solves")
	s.mRebuilds = reg.Counter("tapo_stage3_rebuilds_total",
		"Stage-3 LP skeleton rebuilds (group signature changed)")
}

// TakeStats returns the accumulated simplex counters and resets them.
func (s *Stage3Solver) TakeStats() linprog.Stats {
	st := s.ws.Stats
	s.ws.Stats = linprog.Stats{}
	return st
}

// Solve is SolveContext with a background context.
func (s *Stage3Solver) Solve(pstates []int) (*Stage3Result, error) {
	return s.SolveContext(context.Background(), pstates)
}

// SolveContext solves the Stage-3 LP for the given per-core P-states,
// reusing the cached skeleton when the group signature is unchanged.
func (s *Stage3Solver) SolveContext(ctx context.Context, pstates []int) (*Stage3Result, error) {
	dc := s.dc
	if len(pstates) != dc.NumCores() {
		return nil, fmt.Errorf("assign: got %d P-states for %d cores", len(pstates), dc.NumCores())
	}
	s.mSolves.Inc()

	// Group cores by (node type, P-state), dropping off-state groups.
	clear(s.countMap)
	for j := range dc.Nodes {
		lo, hi := dc.CoreRange(j)
		for k := lo; k < hi; k++ {
			s.countMap[s3Key{dc.Nodes[j].Type, pstates[k]}]++
		}
	}
	s.groups = s.groups[:0]
	for k, c := range s.countMap {
		if k.pstate >= dc.NodeTypes[k.nodeType].OffState() {
			continue // off cores execute nothing
		}
		s.groups = append(s.groups, s3Group{k, c})
	}
	// Deterministic order for reproducible LP construction.
	sort.Slice(s.groups, func(a, b int) bool {
		if s.groups[a].key.nodeType != s.groups[b].key.nodeType {
			return s.groups[a].key.nodeType < s.groups[b].key.nodeType
		}
		return s.groups[a].key.pstate < s.groups[b].key.pstate
	})

	if !s.signatureMatches() {
		s.build()
	} else {
		s.patch()
	}

	sol, err := s.p.SolveWithContext(ctx, &s.ws)
	if err != nil {
		return nil, fmt.Errorf("assign: Stage-3 LP: %w", err)
	}
	return s.disaggregate(pstates, sol), nil
}

func (s *Stage3Solver) signatureMatches() bool {
	if s.p == nil || len(s.keys) != len(s.groups) {
		return false
	}
	for i, g := range s.groups {
		if s.keys[i] != g.key {
			return false
		}
	}
	return true
}

// build constructs the LP skeleton for the current group signature. The
// construction order mirrors Stage3Context exactly so a fresh build solved
// on the retained workspace reproduces its solution bit-for-bit.
func (s *Stage3Solver) build() {
	dc := s.dc
	s.rebuilds++
	s.mRebuilds.Inc()
	s.keys = s.keys[:0]
	for _, g := range s.groups {
		s.keys = append(s.keys, g.key)
	}

	p := linprog.NewProblem(linprog.Maximize)
	p.Method = s.method
	t := dc.T()
	varID := make(map[[2]int]int)
	for i := 0; i < t; i++ {
		for gi, g := range s.groups {
			if !deadlineFeasible(dc, i, g.key.nodeType, g.key.pstate) {
				continue // constraint 2
			}
			id := p.AddVar(fmt.Sprintf("tc_%d_%d", i, gi), 0, linprog.Inf, dc.TaskTypes[i].Reward)
			varID[[2]int{i, gi}] = id
		}
	}
	groupRow := make([]int, len(s.groups))
	for gi, g := range s.groups {
		groupRow[gi] = -1
		var terms []linprog.Term
		for i := 0; i < t; i++ {
			if id, ok := varID[[2]int{i, gi}]; ok {
				ecs := dc.ECS[i][g.key.nodeType][g.key.pstate]
				terms = append(terms, linprog.Term{Var: id, Coef: 1 / ecs})
			}
		}
		if len(terms) > 0 {
			groupRow[gi] = p.NumRows()
			p.AddRow(linprog.LE, float64(g.count), terms...)
		}
	}
	taskRow := make([]int, t)
	for i := 0; i < t; i++ {
		taskRow[i] = -1
		var terms []linprog.Term
		for gi := range s.groups {
			if id, ok := varID[[2]int{i, gi}]; ok {
				terms = append(terms, linprog.Term{Var: id, Coef: 1})
			}
		}
		if len(terms) > 0 {
			taskRow[i] = p.NumRows()
			p.AddRow(linprog.LE, dc.TaskTypes[i].ArrivalRate, terms...)
		}
	}
	s.p, s.varID, s.groupRow, s.taskRow = p, varID, groupRow, taskRow
}

// patch updates the only numbers that can change under an unchanged group
// signature: group core counts and task arrival rates.
func (s *Stage3Solver) patch() {
	for gi, g := range s.groups {
		if r := s.groupRow[gi]; r >= 0 {
			s.p.SetRHS(r, float64(g.count))
		}
	}
	for i, r := range s.taskRow {
		if r >= 0 {
			s.p.SetRHS(r, s.dc.TaskTypes[i].ArrivalRate)
		}
	}
}

// disaggregate splits each group's rate evenly over its member cores,
// mirroring Stage3Context.
func (s *Stage3Solver) disaggregate(pstates []int, sol *linprog.Solution) *Stage3Result {
	dc := s.dc
	t := dc.T()
	ncores := dc.NumCores()
	res := &Stage3Result{
		TC:              make([][]float64, t),
		RewardRate:      sol.Objective,
		CoreUtilization: make([]float64, ncores),
	}
	for i := range res.TC {
		res.TC[i] = make([]float64, ncores)
	}
	groupIdx := make(map[s3Key]int, len(s.groups))
	for gi, g := range s.groups {
		groupIdx[g.key] = gi
	}
	for j := range dc.Nodes {
		lo, hi := dc.CoreRange(j)
		for k := lo; k < hi; k++ {
			key := s3Key{dc.Nodes[j].Type, pstates[k]}
			gi, ok := groupIdx[key]
			if !ok {
				continue // off core
			}
			g := s.groups[gi]
			for i := 0; i < t; i++ {
				id, ok := s.varID[[2]int{i, gi}]
				if !ok {
					continue
				}
				rate := sol.Value(id) / float64(g.count)
				res.TC[i][k] = rate
				res.CoreUtilization[k] += rate / dc.ECS[i][key.nodeType][key.pstate]
			}
		}
	}
	return res
}
