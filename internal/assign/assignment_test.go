package assign_test

import (
	"math"
	"testing"

	"thermaldc/internal/assign"
)

func TestBaselineAssignmentConsistency(t *testing.T) {
	sc := smallScenario(t, 71)
	bl, err := assign.Baseline(sc.DC, sc.Thermal, assign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pstates, tc := bl.Assignment(sc.DC)
	if len(pstates) != sc.DC.NumCores() {
		t.Fatalf("pstates length %d", len(pstates))
	}
	// Active-core counts match UsedCores; only P0/off appear.
	for j := range sc.DC.Nodes {
		lo, hi := sc.DC.CoreRange(j)
		active := 0
		for k := lo; k < hi; k++ {
			switch pstates[k] {
			case 0:
				active++
			case sc.DC.NodeType(j).OffState():
			default:
				t.Fatalf("core %d in P-state %d", k, pstates[k])
			}
		}
		if active != bl.UsedCores[j] {
			t.Fatalf("node %d: %d active cores, UsedCores %d", j, active, bl.UsedCores[j])
		}
	}
	// TC reproduces the baseline reward rate.
	reward := 0.0
	for i := range tc {
		for k := range tc[i] {
			reward += sc.DC.TaskTypes[i].Reward * tc[i][k]
			if tc[i][k] > 0 && pstates[k] != 0 {
				t.Fatalf("TC on inactive core %d", k)
			}
		}
	}
	if math.Abs(reward-bl.RewardRate) > 1e-6*(1+bl.RewardRate) {
		t.Errorf("assignment reward %g != baseline reward %g", reward, bl.RewardRate)
	}
	// Per-core utilization within 1: Σ_i TC(i,k)/ECS(i,·,0) ≤ 1.
	for j := range sc.DC.Nodes {
		lo, hi := sc.DC.CoreRange(j)
		typ := sc.DC.Nodes[j].Type
		for k := lo; k < hi; k++ {
			util := 0.0
			for i := range tc {
				if tc[i][k] > 0 {
					util += tc[i][k] / sc.DC.ECS[i][typ][0]
				}
			}
			if util > 1+1e-6 {
				t.Fatalf("core %d utilization %g", k, util)
			}
		}
	}
}
