package assign_test

import (
	"math"
	"runtime"
	"testing"

	"thermaldc/internal/assign"
	"thermaldc/internal/pwl"
	"thermaldc/internal/scenario"
	"thermaldc/internal/stats"
)

// buildARRs mirrors what ThreeStage precomputes per ψ.
func buildARRs(t *testing.T, sc *scenario.Scenario, psi float64) []*pwl.Func {
	t.Helper()
	arrs := make([]*pwl.Func, len(sc.DC.NodeTypes))
	for j := range arrs {
		f, err := assign.ARR(sc.DC, j, psi)
		if err != nil {
			t.Fatal(err)
		}
		arrs[j] = f
	}
	return arrs
}

// TestStage1SolverMatchesFixed checks the incremental solver against the
// from-scratch Stage1Fixed across randomized scenarios and many lattice
// points, including repeated solves on one solver and solves on a clone.
// The two paths perform identical floating-point operations, so the
// comparison tolerance of 1e-9 should see differences of exactly zero.
func TestStage1SolverMatchesFixed(t *testing.T) {
	const tol = 1e-9
	cases := []struct {
		seed           int64
		ncracs, nnodes int
		psi            float64
	}{
		{seed: 3, ncracs: 2, nnodes: 20, psi: 50},
		{seed: 11, ncracs: 2, nnodes: 20, psi: 25},
		{seed: 7, ncracs: 3, nnodes: 45, psi: 50},
	}
	for _, tc := range cases {
		cfg := scenario.Default(0.3, 0.1, tc.seed)
		cfg.NCracs = tc.ncracs
		cfg.NNodes = tc.nnodes
		sc, err := scenario.Build(cfg)
		if err != nil {
			t.Fatalf("seed %d: scenario.Build: %v", tc.seed, err)
		}
		arrs := buildARRs(t, sc, tc.psi)
		solver := assign.NewStage1Solver(sc.DC, sc.Thermal, arrs)
		clone := solver.Clone()

		// Random outlet vectors across the search window, plus the window
		// corners (the hot corner often makes base power alone violate a
		// redline, exercising the infeasible-candidate error path).
		rng := stats.NewRand(tc.seed + 500)
		points := [][]float64{
			repeated(5, tc.ncracs), repeated(25, tc.ncracs), repeated(16, tc.ncracs),
		}
		for n := 0; n < 12; n++ {
			p := make([]float64, tc.ncracs)
			for i := range p {
				p[i] = 5 + 20*rng.Float64()
			}
			points = append(points, p)
		}

		// Two passes over all points on the same solver: the second pass
		// must reproduce the first (no state leaks between solves).
		for pass := 0; pass < 2; pass++ {
			for pi, out := range points {
				want, wantErr := assign.Stage1Fixed(sc.DC, sc.Thermal, arrs, out)
				s := solver
				if pi%2 == 1 {
					s = clone
				}
				got, gotErr := s.Solve(out)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("seed %d point %v pass %d: error mismatch: fixed=%v solver=%v",
						tc.seed, out, pass, wantErr, gotErr)
				}
				if wantErr != nil {
					if got.Feasible != want.Feasible {
						t.Errorf("seed %d point %v: Feasible %v vs %v on error", tc.seed, out, got.Feasible, want.Feasible)
					}
					continue
				}
				if got.Feasible != want.Feasible {
					t.Errorf("seed %d point %v pass %d: Feasible = %v, want %v", tc.seed, out, pass, got.Feasible, want.Feasible)
				}
				close := func(name string, g, w float64) {
					if math.Abs(g-w) > tol {
						t.Errorf("seed %d point %v pass %d: %s = %.15g, want %.15g", tc.seed, out, pass, name, g, w)
					}
				}
				close("PredictedARR", got.PredictedARR, want.PredictedARR)
				close("PowerShadowPrice", got.PowerShadowPrice, want.PowerShadowPrice)
				close("ComputePower", got.ComputePower, want.ComputePower)
				close("CRACPower", got.CRACPower, want.CRACPower)
				close("TotalPower", got.TotalPower, want.TotalPower)
				for j := range want.NodePower {
					if math.Abs(got.NodePower[j]-want.NodePower[j]) > tol {
						t.Errorf("seed %d point %v pass %d: NodePower[%d] = %.15g, want %.15g",
							tc.seed, out, pass, j, got.NodePower[j], want.NodePower[j])
					}
					if math.Abs(got.NodeCorePower[j]-want.NodeCorePower[j]) > tol {
						t.Errorf("seed %d point %v pass %d: NodeCorePower[%d] = %.15g, want %.15g",
							tc.seed, out, pass, j, got.NodeCorePower[j], want.NodeCorePower[j])
					}
				}
			}
		}
	}
}

func repeated(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestThreeStageParallelismInvariant verifies the documented determinism
// guarantee end to end: the full three-stage assignment returns identical
// results for every worker-pool size.
func TestThreeStageParallelismInvariant(t *testing.T) {
	sc := smallScenario(t, 4)
	var ref *assign.ThreeStageResult
	for i, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		opts := assign.DefaultOptions()
		opts.Search.Parallelism = par
		res, err := assign.ThreeStage(sc.DC, sc.Thermal, opts)
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", par, err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.RewardRate() != ref.RewardRate() {
			t.Errorf("Parallelism=%d: reward %.15g != reference %.15g", par, res.RewardRate(), ref.RewardRate())
		}
		if res.Stage1.PredictedARR != ref.Stage1.PredictedARR {
			t.Errorf("Parallelism=%d: Stage1 ARR %.15g != reference %.15g", par, res.Stage1.PredictedARR, ref.Stage1.PredictedARR)
		}
		if res.SearchEvals != ref.SearchEvals {
			t.Errorf("Parallelism=%d: SearchEvals %d != reference %d", par, res.SearchEvals, ref.SearchEvals)
		}
		for i := range ref.Stage1.CracOut {
			if res.Stage1.CracOut[i] != ref.Stage1.CracOut[i] {
				t.Errorf("Parallelism=%d: CracOut = %v, want %v", par, res.Stage1.CracOut, ref.Stage1.CracOut)
				break
			}
		}
		for k := range ref.PStates {
			if res.PStates[k] != ref.PStates[k] {
				t.Errorf("Parallelism=%d: PStates differ at core %d", par, k)
				break
			}
		}
	}
}
