package assign_test

import (
	"testing"

	"thermaldc/internal/assign"
)

func TestVerifyCleanAssignment(t *testing.T) {
	// Every assignment the pipeline produces must verify cleanly, across
	// seeds.
	for seed := int64(61); seed < 64; seed++ {
		sc := smallScenario(t, seed)
		res, err := assign.ThreeStage(sc.DC, sc.Thermal, assign.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if vs := assign.Verify(sc.DC, sc.Thermal, res, 1e-6); len(vs) != 0 {
			for _, v := range vs {
				t.Errorf("seed %d: %s", seed, v)
			}
		}
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	sc := smallScenario(t, 65)
	hasKind := func(vs []assign.Violation, kind string) bool {
		for _, v := range vs {
			if v.Constraint == kind {
				return true
			}
		}
		return false
	}

	// Utilization: inflate one core's desired rate massively.
	tamper := func() *assign.ThreeStageResult {
		r, err := assign.ThreeStage(sc.DC, sc.Thermal, assign.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	r := tamper()
	// Find an active core.
	core := -1
	for k := range r.PStates {
		j := sc.DC.CoreNode(k)
		if r.PStates[k] < sc.DC.NodeType(j).OffState() {
			core = k
			break
		}
	}
	if core < 0 {
		t.Fatal("no active core")
	}
	r.Stage3.TC[0][core] += 1e6
	vs := assign.Verify(sc.DC, sc.Thermal, r, 1e-6)
	if !hasKind(vs, "utilization") && !hasKind(vs, "deadline") {
		t.Errorf("inflated TC not detected: %v", vs)
	}
	if !hasKind(vs, "arrival") {
		t.Errorf("arrival violation not detected: %v", vs)
	}

	// Power: put every core in P-state 0.
	r = tamper()
	for k := range r.PStates {
		r.PStates[k] = 0
	}
	vs = assign.Verify(sc.DC, sc.Thermal, r, 1e-6)
	if !hasKind(vs, "power") {
		t.Errorf("power violation not detected: %v", vs)
	}

	// P-state range.
	r = tamper()
	r.PStates[0] = 99
	if vs := assign.Verify(sc.DC, sc.Thermal, r, 1e-6); !hasKind(vs, "pstate-range") {
		t.Errorf("invalid P-state not detected: %v", vs)
	}

	// Violation stringer.
	if len(vs) == 0 || vs[0].String() == "" {
		t.Error("violation String empty")
	}
}
