package assign_test

import (
	"math"
	"testing"

	"thermaldc/internal/assign"
	"thermaldc/internal/linprog"
)

// TestStage3GroupingExactness cross-checks the grouped Stage-3 LP against
// an explicit per-core formulation (one TC variable per task×core pair):
// grouping cores by (node type, P-state) must not change the optimum.
func TestStage3GroupingExactness(t *testing.T) {
	sc := smallScenario(t, 51)
	dc := sc.DC
	res, err := assign.ThreeStage(dc, sc.Thermal, assign.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	grouped := res.Stage3

	// Per-core LP.
	p := linprog.NewProblem(linprog.Maximize)
	ncores := dc.NumCores()
	tt := dc.T()
	ids := make([][]int, tt)
	coreType := make([]int, ncores)
	for j := range dc.Nodes {
		lo, hi := dc.CoreRange(j)
		for k := lo; k < hi; k++ {
			coreType[k] = dc.Nodes[j].Type
		}
	}
	for i := 0; i < tt; i++ {
		ids[i] = make([]int, ncores)
		for k := 0; k < ncores; k++ {
			ids[i][k] = -1
			ps := res.PStates[k]
			typ := coreType[k]
			if ps >= dc.NodeTypes[typ].OffState() {
				continue
			}
			ecs := dc.ECS[i][typ][ps]
			if ecs <= 1e-9 || 1/ecs > dc.TaskTypes[i].RelDeadline {
				continue
			}
			ids[i][k] = p.AddVar("", 0, linprog.Inf, dc.TaskTypes[i].Reward)
		}
	}
	for k := 0; k < ncores; k++ {
		var terms []linprog.Term
		for i := 0; i < tt; i++ {
			if id := ids[i][k]; id >= 0 {
				ecs := dc.ECS[i][coreType[k]][res.PStates[k]]
				terms = append(terms, linprog.Term{Var: id, Coef: 1 / ecs})
			}
		}
		if len(terms) > 0 {
			p.AddRow(linprog.LE, 1, terms...)
		}
	}
	for i := 0; i < tt; i++ {
		var terms []linprog.Term
		for k := 0; k < ncores; k++ {
			if id := ids[i][k]; id >= 0 {
				terms = append(terms, linprog.Term{Var: id, Coef: 1})
			}
		}
		if len(terms) > 0 {
			p.AddRow(linprog.LE, dc.TaskTypes[i].ArrivalRate, terms...)
		}
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-grouped.RewardRate) > 1e-6*(1+sol.Objective) {
		t.Errorf("per-core LP %g != grouped LP %g", sol.Objective, grouped.RewardRate)
	}
}
