package assign_test

import (
	"math"
	"testing"

	"thermaldc/internal/assign"
	"thermaldc/internal/linprog"
	"thermaldc/internal/scenario"
	"thermaldc/internal/stats"
)

// TestStage1SolverRevisedMatchesTableau runs the incremental Stage-1
// solver under both simplex cores over randomized outlet candidates: the
// revised core must agree with the tableau core on feasibility and all
// derived quantities to LP-verification precision.
func TestStage1SolverRevisedMatchesTableau(t *testing.T) {
	const tol = 1e-6
	cfg := scenario.Default(0.3, 0.1, 3)
	cfg.NCracs = 2
	cfg.NNodes = 20
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatalf("scenario.Build: %v", err)
	}
	arrs := buildARRs(t, sc, 50)
	tab := assign.NewStage1Solver(sc.DC, sc.Thermal, arrs)
	rev := assign.NewStage1Solver(sc.DC, sc.Thermal, arrs)
	rev.SetMethod(linprog.MethodRevised)

	rng := stats.NewRand(777)
	for n := 0; n < 15; n++ {
		out := make([]float64, cfg.NCracs)
		for i := range out {
			out[i] = 5 + 20*rng.Float64()
		}
		want, wantErr := tab.Solve(out)
		got, gotErr := rev.Solve(out)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("point %v: error mismatch: tableau=%v revised=%v", out, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if got.Feasible != want.Feasible {
			t.Errorf("point %v: Feasible = %v, want %v", out, got.Feasible, want.Feasible)
		}
		close := func(name string, g, w float64) {
			if math.Abs(g-w) > tol*(1+math.Abs(w)) {
				t.Errorf("point %v: %s = %.15g, tableau %.15g", out, name, g, w)
			}
		}
		close("PredictedARR", got.PredictedARR, want.PredictedARR)
		close("PowerShadowPrice", got.PowerShadowPrice, want.PowerShadowPrice)
		close("ComputePower", got.ComputePower, want.ComputePower)
		close("TotalPower", got.TotalPower, want.TotalPower)
	}
}

// TestThreeStageRevisedMatchesTableau runs the full three-stage pipeline
// under the revised core (with warm starts on) and compares the headline
// results against the default tableau run. Stage 2 rounds Stage-1 powers
// to integer P-states, which snaps LP-level round-off away — so reward
// rate and P-states must match exactly unless a Stage-1 optimum sits on a
// rounding knife edge, which these seeds do not.
func TestThreeStageRevisedMatchesTableau(t *testing.T) {
	for _, seed := range []int64{4, 9} {
		sc := smallScenario(t, seed)
		ref, err := assign.ThreeStage(sc.DC, sc.Thermal, assign.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d tableau: %v", seed, err)
		}
		opts := assign.DefaultOptions()
		opts.Method = linprog.MethodRevised
		opts.WarmStart = true
		got, err := assign.ThreeStage(sc.DC, sc.Thermal, opts)
		if err != nil {
			t.Fatalf("seed %d revised: %v", seed, err)
		}
		if math.Abs(got.RewardRate()-ref.RewardRate()) > 1e-6*(1+math.Abs(ref.RewardRate())) {
			t.Errorf("seed %d: reward %.15g, tableau %.15g", seed, got.RewardRate(), ref.RewardRate())
		}
		for i := range ref.Stage1.CracOut {
			if got.Stage1.CracOut[i] != ref.Stage1.CracOut[i] {
				t.Errorf("seed %d: CracOut = %v, tableau %v", seed, got.Stage1.CracOut, ref.Stage1.CracOut)
				break
			}
		}
		for k := range ref.PStates {
			if got.PStates[k] != ref.PStates[k] {
				t.Errorf("seed %d: PStates differ at core %d", seed, k)
				break
			}
		}
	}
}

// TestStage1SolverWarmStartEngages drives the power-cap-only epoch
// re-solve pattern: fixed outlets, Pconst stepping between solves. Under
// MethodRevised with warm starts on, every re-solve after the first must
// warm-start (the patch changes only right-hand sides), and the results
// must match a cold revised solver bit-for-bit.
//
// Bit-identity holds only when the optimal basis is unique: on degenerate
// Stage-1 instances with tied ARR slopes, warm and cold can stop at
// different equally-optimal vertices (same objective to 1 ulp, different
// NodeCorePower splits). This scenario/outlet pair was picked to be
// tie-free at every cap step while still forcing real dual pivots.
func TestStage1SolverWarmStartEngages(t *testing.T) {
	cfg := scenario.Default(0.3, 0.1, 11)
	cfg.NCracs = 2
	cfg.NNodes = 20
	sc, err := scenario.Build(cfg)
	if err != nil {
		t.Fatalf("scenario.Build: %v", err)
	}
	arrs := buildARRs(t, sc, 50)
	warm := assign.NewStage1Solver(sc.DC, sc.Thermal, arrs)
	warm.SetMethod(linprog.MethodRevised)
	warm.SetWarmStart(true)
	cold := assign.NewStage1Solver(sc.DC, sc.Thermal, arrs)
	cold.SetMethod(linprog.MethodRevised)

	out := repeated(16, cfg.NCracs)
	basePconst := sc.DC.Pconst
	defer func() { sc.DC.Pconst = basePconst }()
	for i, scale := range []float64{1, 0.9, 0.8, 0.85, 0.95, 1} {
		sc.DC.Pconst = basePconst * scale
		w, werr := warm.Solve(out)
		c, cerr := cold.Solve(out)
		if (werr == nil) != (cerr == nil) {
			t.Fatalf("step %d: warm err=%v cold err=%v", i, werr, cerr)
		}
		if werr != nil {
			continue
		}
		if math.Float64bits(w.PredictedARR) != math.Float64bits(c.PredictedARR) {
			t.Errorf("step %d: warm ARR %.17g != cold %.17g", i, w.PredictedARR, c.PredictedARR)
		}
		if math.Float64bits(w.PowerShadowPrice) != math.Float64bits(c.PowerShadowPrice) {
			t.Errorf("step %d: warm shadow price %.17g != cold %.17g", i, w.PowerShadowPrice, c.PowerShadowPrice)
		}
		for j := range c.NodeCorePower {
			if math.Float64bits(w.NodeCorePower[j]) != math.Float64bits(c.NodeCorePower[j]) {
				t.Errorf("step %d: NodeCorePower[%d] differs", i, j)
				break
			}
		}
	}
	st := warm.TakeStats()
	if st.WarmHits == 0 {
		t.Fatalf("no warm hits over power-cap steps (attempts %d, rejects %d)", st.WarmAttempts, st.WarmRejects)
	}
	if st.WarmRejects != 0 {
		t.Errorf("WarmRejects = %d on RHS-only re-solves, want 0", st.WarmRejects)
	}
	if st.DualPivots == 0 {
		t.Error("no dual pivots: the cap steps never moved the basis, test is vacuous")
	}
	cs := cold.TakeStats()
	if st.Pivots >= cs.Pivots {
		t.Errorf("warm pivots %d >= cold pivots %d over the schedule", st.Pivots, cs.Pivots)
	}
}
