package assign_test

import (
	"testing"

	"thermaldc/internal/assign"
	"thermaldc/internal/scenario"
)

// TestSoakPipeline runs the complete pipeline across a spread of sizes,
// knobs and seeds, and re-checks every output with the independent
// verifier. This is the broadest guard against formula drift between the
// optimizer, the model and the physics.
func TestSoakPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	cases := []struct {
		ncracs, nnodes int
		static, vprop  float64
		pfrac          float64
	}{
		{1, 5, 0.3, 0.1, 0.5},
		{2, 10, 0.2, 0.3, 0.5},
		{2, 15, 0.3, 0.3, 0.3},
		{3, 15, 0.2, 0.1, 0.7},
		{2, 20, 0.4, 0.2, 0.4},
	}
	for ci, c := range cases {
		for seed := int64(0); seed < 2; seed++ {
			cfg := scenario.Default(c.static, c.vprop, 100*int64(ci)+seed)
			cfg.NCracs, cfg.NNodes = c.ncracs, c.nnodes
			cfg.PconstFraction = c.pfrac
			sc, err := scenario.Build(cfg)
			if err != nil {
				t.Fatalf("case %d seed %d: %v", ci, seed, err)
			}
			for _, psi := range []float64{25, 50} {
				opts := assign.DefaultOptions()
				opts.Psi = psi
				res, err := assign.ThreeStage(sc.DC, sc.Thermal, opts)
				if err != nil {
					t.Fatalf("case %d seed %d ψ=%g: %v", ci, seed, psi, err)
				}
				if vs := assign.Verify(sc.DC, sc.Thermal, res, 1e-6); len(vs) != 0 {
					for _, v := range vs {
						t.Errorf("case %d seed %d ψ=%g: %s", ci, seed, psi, v)
					}
				}
			}
			// The baseline must also satisfy its own constraints.
			bl, err := assign.Baseline(sc.DC, sc.Thermal, assign.DefaultOptions())
			if err != nil {
				t.Fatalf("case %d seed %d baseline: %v", ci, seed, err)
			}
			if !bl.Feasible {
				t.Errorf("case %d seed %d: baseline infeasible", ci, seed)
			}
		}
	}
}
