package assign_test

import (
	"math"
	"reflect"
	"testing"

	"thermaldc/internal/assign"
)

// TestThreeStageSolverMatchesThreeStage checks the warm solver is a
// faithful refactor: repeat Solve calls reproduce the one-shot ThreeStage
// result exactly, and a Pconst-only change (the epoch controller's
// power-cap fast path) matches a fresh solve on the capped model.
func TestThreeStageSolverMatchesThreeStage(t *testing.T) {
	sc := smallScenario(t, 21)
	opts := assign.DefaultOptions()

	want, err := assign.ThreeStage(sc.DC, sc.Thermal, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := assign.NewThreeStageSolver(sc.DC, sc.Thermal, opts)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		got, err := s.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if got.RewardRate() != want.RewardRate() {
			t.Fatalf("rep %d: warm reward rate %g != one-shot %g", rep, got.RewardRate(), want.RewardRate())
		}
		if !reflect.DeepEqual(got.PStates, want.PStates) {
			t.Fatalf("rep %d: warm P-states differ from one-shot", rep)
		}
		if !reflect.DeepEqual(got.Stage1.CracOut, want.Stage1.CracOut) {
			t.Fatalf("rep %d: warm outlet temperatures differ", rep)
		}
	}

	// Power-cap fast path: mutate Pconst in place, re-Solve warm, compare
	// to a cold solve on the same capped model.
	orig := sc.DC.Pconst
	sc.DC.Pconst = 0.8 * orig
	defer func() { sc.DC.Pconst = orig }()
	warm, err := s.Solve()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := assign.ThreeStage(sc.DC, sc.Thermal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.RewardRate()-cold.RewardRate()) > 1e-9 {
		t.Fatalf("capped warm reward rate %g != cold %g", warm.RewardRate(), cold.RewardRate())
	}
	if !reflect.DeepEqual(warm.PStates, cold.PStates) {
		t.Fatal("capped warm P-states differ from cold solve")
	}
	if warm.RewardRate() > want.RewardRate()+1e-9 {
		t.Fatal("tightening the cap increased the reward rate")
	}
}
