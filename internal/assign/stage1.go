package assign

import (
	"fmt"

	"thermaldc/internal/linprog"
	"thermaldc/internal/model"
	"thermaldc/internal/pwl"
	"thermaldc/internal/thermal"
)

// powerTolerance is the slack allowed when verifying the exact (clamped)
// CRAC power against Pconst after solving the linearized LP, and when
// checking redlines.
const powerTolerance = 1e-6

// Stage1Result is the outcome of the relaxed power-assignment LP
// (Equation 9) at fixed CRAC outlet temperatures.
type Stage1Result struct {
	// CracOut is the outlet-temperature vector the LP was solved for.
	CracOut []float64
	// NodeCorePower[j] is the total power assigned to node j's cores (kW),
	// the aggregated PCORE of the paper's relaxation.
	NodeCorePower []float64
	// NodePower[j] = base + NodeCorePower[j].
	NodePower []float64
	// PredictedARR is the LP objective: the aggregate reward rate of the
	// relaxed assignment (an estimate of the reward rate Stage 3 realizes).
	PredictedARR float64
	// ComputePower, CRACPower and TotalPower are the exact power ledger at
	// the solution (CRAC power with the max(0,·) rule).
	ComputePower float64
	CRACPower    float64
	TotalPower   float64
	// Feasible reports whether the exact power and redline checks hold
	// (the LP uses a linearized CRAC power; see thermal.LinearizeCRACPower).
	Feasible bool
	// PowerShadowPrice is the dual of the power constraint: the marginal
	// steady-state reward rate gained per extra kW of Pconst (0 when the
	// power constraint is not binding).
	PowerShadowPrice float64
	// LinearBasePower is the constant term of the linearized power row:
	// compute base power plus linearized CRAC power with every core off.
	// No assignment at these outlet temperatures can use less linearized
	// power, so it is the minimum viable power budget for the LP.
	LinearBasePower float64
	// LinearPower is the linearized total power at the LP solution — the
	// left-hand side of the power row plus LinearBasePower. It differs
	// from TotalPower only by the linearization's dropped max(0,·) clamp,
	// satisfies LinearPower ≤ Pconst exactly when the LP says so, and is
	// what the zone decomposition's master problem accounts against the
	// shared budget (the exact clamped ledger is not additive across a
	// budget split; the LP's own row is).
	LinearPower float64
}

// NodeARRs builds, for every node type, the per-core concave ARR envelope
// at the given ψ — the exact input NewStage1Solver expects. Exported for
// the zone decomposition (internal/zones), whose per-zone solvers must
// share one envelope set so zone LPs price cores identically to the
// monolithic LP.
func NodeARRs(dc *model.DataCenter, psiPercent float64) ([]*pwl.Func, error) {
	return nodeARRs(dc, psiPercent)
}

// nodeARRs builds, for every node type, the per-core concave ARR envelope.
func nodeARRs(dc *model.DataCenter, psiPercent float64) ([]*pwl.Func, error) {
	out := make([]*pwl.Func, len(dc.NodeTypes))
	for j := range dc.NodeTypes {
		f, err := ARR(dc, j, psiPercent)
		if err != nil {
			return nil, err
		}
		out[j] = f
	}
	return out, nil
}

// Stage1Fixed solves the Stage-1 LP for fixed CRAC outlet temperatures.
//
// Formulation: each node j aggregates its identical cores — by concavity
// of ARR, splitting a node budget x equally is optimal, so node reward is
// n_j·ARR(x/n_j), itself a concave PWL encoded as bounded segment
// variables with decreasing slopes. The constraints are the paper's:
// total compute + (linearized) CRAC power ≤ Pconst, and inlet redlines,
// both affine in the node powers via the thermal model's sensitivities.
func Stage1Fixed(dc *model.DataCenter, tm *thermal.Model, arrs []*pwl.Func, cracOut []float64) (*Stage1Result, error) {
	ncn := dc.NCN()
	p := linprog.NewProblem(linprog.Maximize)

	// Segment variables per node.
	type segVar struct {
		node int
		id   int
	}
	var segVars []segVar
	nodeSegs := make([][]int, ncn) // var ids per node
	for j := 0; j < ncn; j++ {
		nt := dc.NodeType(j)
		scaled := arrs[dc.Nodes[j].Type].Scale(float64(nt.NumCores))
		for s, seg := range scaled.Segments() {
			id := p.AddVar(fmt.Sprintf("seg_%d_%d", j, s), 0, seg.Length, seg.Slope)
			segVars = append(segVars, segVar{j, id})
			nodeSegs[j] = append(nodeSegs[j], id)
		}
	}

	// Power constraint (paper constraint 4, linearized CRAC power):
	// Σ_j (B_j + x_j) + Σ_i [Const_i + Σ_j Coef_i[j]·(B_j + x_j)] ≤ Pconst.
	lin := tm.LinearizeCRACPower(cracOut)
	baseConst := 0.0
	nodeCoef := make([]float64, ncn)
	for j := 0; j < ncn; j++ {
		nodeCoef[j] = 1
		baseConst += dc.NodeType(j).BasePower
	}
	for _, l := range lin {
		baseConst += l.Const
		for j, c := range l.Coef {
			nodeCoef[j] += c
			baseConst += c * dc.NodeType(j).BasePower
		}
	}
	var powerTerms []linprog.Term
	for _, sv := range segVars {
		powerTerms = append(powerTerms, linprog.Term{Var: sv.id, Coef: nodeCoef[sv.node]})
	}
	p.AddRow(linprog.LE, dc.Pconst-baseConst, powerTerms...)

	// Thermal rows (paper constraint 5): for every thermal unit t,
	// base_t(cracOut) + Σ_j G[t][j]·(B_j + x_j) ≤ redline_t.
	base := tm.InletBase(cracOut)
	g := tm.PowerSensitivity()
	redline := dc.Redline()
	for t := 0; t < dc.NumThermal(); t++ {
		rhs := redline[t] - base[t]
		var terms []linprog.Term
		for j := 0; j < ncn; j++ {
			gj := g.At(t, j)
			rhs -= gj * dc.NodeType(j).BasePower
			if gj == 0 {
				continue
			}
			for _, id := range nodeSegs[j] {
				terms = append(terms, linprog.Term{Var: id, Coef: gj})
			}
		}
		if rhs < 0 {
			// Base power alone violates this redline: infeasible outlets.
			return &Stage1Result{CracOut: append([]float64(nil), cracOut...), Feasible: false},
				fmt.Errorf("assign: redline %d violated by base power alone at outlets %v", t, cracOut)
		}
		p.AddRow(linprog.LE, rhs, terms...)
	}

	sol, err := p.Solve()
	if err != nil {
		return &Stage1Result{CracOut: append([]float64(nil), cracOut...), Feasible: false}, err
	}

	res := &Stage1Result{
		CracOut:          append([]float64(nil), cracOut...),
		NodeCorePower:    make([]float64, ncn),
		NodePower:        make([]float64, ncn),
		PredictedARR:     sol.Objective,
		PowerShadowPrice: sol.Dual(0), // the power row is added first
		LinearBasePower:  baseConst,
		LinearPower:      baseConst,
	}
	for _, sv := range segVars {
		res.NodeCorePower[sv.node] += sol.Value(sv.id)
		res.LinearPower += nodeCoef[sv.node] * sol.Value(sv.id)
	}
	for j := 0; j < ncn; j++ {
		res.NodePower[j] = dc.NodeType(j).BasePower + res.NodeCorePower[j]
		res.ComputePower += res.NodePower[j]
	}
	for _, cp := range tm.CRACPowers(cracOut, res.NodePower) {
		res.CRACPower += cp
	}
	res.TotalPower = res.ComputePower + res.CRACPower
	tin := tm.InletTemps(cracOut, res.NodePower)
	res.Feasible = res.TotalPower <= dc.Pconst+powerTolerance &&
		tm.RedlineSlack(tin) >= -powerTolerance
	return res, nil
}
