package thermaldc

import (
	"thermaldc/internal/layout"
	"thermaldc/internal/stats"
	"thermaldc/internal/workload"
)

// LayoutConfig controls the hot-aisle floor plan and the Appendix-B
// cross-interference generator.
type LayoutConfig = layout.Config

// DefaultLayoutConfig returns the paper's layout parameters (racks of 5,
// 70% of exit air to the facing CRAC).
func DefaultLayoutConfig() LayoutConfig { return layout.DefaultConfig() }

// ArrangeLayout assigns rack positions, Table-II labels and hot aisles to
// dc.Nodes and sizes the CRAC flows to match the total node air flow. Call
// it after populating dc.NodeTypes, dc.Nodes and dc.CRACs (flows may be
// zero; they are overwritten).
func ArrangeLayout(dc *DataCenter, cfg LayoutConfig) error {
	return layout.Arrange(dc, cfg)
}

// GenerateAlpha solves the Appendix-B LP feasibility problem and stores
// the cross-interference matrix in dc.Alpha. Deterministic per seed.
func GenerateAlpha(dc *DataCenter, cfg LayoutConfig, seed int64) error {
	return layout.GenerateAlpha(dc, cfg, stats.NewRand(seed))
}

// DefaultWorkloadConfig returns the paper's §VI generator parameters for
// the given Vprop.
func DefaultWorkloadConfig(vprop float64) WorkloadConfig {
	return workload.DefaultGenConfig(vprop)
}

// GenerateWorkload fills dc.ECS and dc.TaskTypes with the §VI synthetic
// workload. Deterministic per seed. dc.NodeTypes and dc.Nodes must be set.
func GenerateWorkload(dc *DataCenter, cfg WorkloadConfig, seed int64) error {
	rng := stats.NewRand(seed)
	ecs, err := workload.GenerateECS(dc.NodeTypes, cfg, rng)
	if err != nil {
		return err
	}
	dc.ECS = ecs
	return workload.GenerateTaskTypes(dc, cfg, rng)
}
